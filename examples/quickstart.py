#!/usr/bin/env python3
"""Quickstart: sketch a tall matrix and solve a least-squares problem.

This walks through the library's public API in the order a new user needs it:

1. build a CountSketch / Gaussian / SRHT / multisketch operator,
2. sketch a tall matrix (NumPy in, NumPy out),
3. inspect the simulated-H100 time breakdown that accumulated underneath, and
4. solve an overdetermined least-squares problem with sketch-and-solve
   (the paper's Algorithm 1) and compare it against the normal equations.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CountSketch,
    GaussianSketch,
    GPUExecutor,
    SRHT,
    count_gauss,
    normal_equations,
    sketch_and_solve,
)

D, N = 1 << 16, 64  # 65,536 x 64: tall and skinny, like the paper's workloads


def sketching_demo() -> None:
    """Sketch one matrix with every operator family and compare distortions."""
    print("=" * 72)
    print("1. Sketching a tall matrix")
    print("=" * 72)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((D, N))

    # One executor = one simulated GPU; all operators share its clock.
    executor = GPUExecutor(seed=0, track_memory=False)

    sketches = {
        "CountSketch (Algorithm 2), k = 2n^2": CountSketch(D, 2 * N * N, executor=executor, seed=1),
        "Gaussian, k = 2n": GaussianSketch(D, 2 * N, executor=executor, seed=2),
        "SRHT, k = 2n": SRHT(D, 2 * N, executor=executor, seed=3),
        "Multisketch (Count -> Gauss), k = 2n": count_gauss(D, N, executor=executor, seed=4),
    }

    frob = np.linalg.norm(a)
    for name, sketch in sketches.items():
        mark = executor.mark()
        y = sketch.sketch_host(a)          # NumPy in, NumPy out
        simulated_ms = executor.elapsed_since(mark) * 1e3
        ratio = np.linalg.norm(y) / frob
        print(f"  {name:44s} output {str(y.shape):12s} "
              f"||SA||/||A|| = {ratio:5.3f}   simulated H100 time = {simulated_ms:7.3f} ms")

    print("\n  Simulated time by phase (whole demo):")
    for phase, seconds in executor.breakdown().by_phase().items():
        print(f"    {phase:15s} {seconds * 1e3:8.3f} ms")


def least_squares_demo() -> None:
    """Solve min ||b - Ax|| with the normal equations and with sketch-and-solve."""
    print()
    print("=" * 72)
    print("2. Sketch-and-solve least squares (paper Algorithm 1)")
    print("=" * 72)
    rng = np.random.default_rng(1)
    a = rng.standard_normal((D, N))
    x_true = np.ones(N)
    b = a @ x_true + 0.1 * rng.standard_normal(D)

    executor = GPUExecutor(seed=1, track_memory=False)

    ne = normal_equations(a, b, executor=executor)
    multi = count_gauss(D, N, executor=executor, seed=7)
    ss = sketch_and_solve(a, b, multi, executor=executor)

    print(f"  normal equations : residual {ne.relative_residual:.6f}   "
          f"simulated time {ne.total_seconds * 1e3:7.3f} ms")
    print(f"  multisketch S&S  : residual {ss.relative_residual:.6f}   "
          f"simulated time {ss.total_seconds * 1e3:7.3f} ms")
    print(f"  residual inflation (the paper's O(1) distortion factor): "
          f"{ss.relative_residual / ne.relative_residual:.4f}")
    print(f"  solution error vs normal equations: "
          f"{np.linalg.norm(ss.x - ne.x) / np.linalg.norm(ne.x):.2e}")

    print("\n  Sketch-and-solve phase breakdown (the Figure-5 bar for 'Multi'):")
    for phase, seconds in ss.phase_seconds().items():
        print(f"    {phase:15s} {seconds * 1e3:8.3f} ms")


if __name__ == "__main__":
    sketching_demo()
    least_squares_demo()
