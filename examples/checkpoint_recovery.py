#!/usr/bin/env python3
"""Crash-proof streaming sessions: checkpoint, kill, restore, verify.

A durable SketchServer streams a regression problem into a sliding-window
session.  Every appended batch is write-ahead-logged (fsync'd to the
checkpoint directory) *before* it is folded into the window sketch, and
every few appends the whole engine state -- sketch accumulators, operator
seed, row index, cached solution -- is snapshotted and the WAL truncated.

Then the process "dies": the server object is dropped without a save.  A
fresh server pointed at the same directory restores the session from its
last checkpoint plus WAL replay, and answers the same query *bit
identically* -- hashed row identity is a pure function of the restored
row index and operator seed, so recovery is exact, not approximate.

Run:  PYTHONPATH=src python examples/checkpoint_recovery.py
"""

import tempfile

import numpy as np

from repro import DirectoryCheckpointStore, DurabilityConfig, SketchServer

N = 16          # features
BATCH = 256     # rows per arriving batch
BATCHES = 11    # not a multiple of the interval: leaves a live WAL tail


def make_server(checkpoint_dir: str) -> SketchServer:
    durability = DurabilityConfig(
        store=DirectoryCheckpointStore(checkpoint_dir),
        checkpoint_interval_batches=4,
    )
    return SketchServer(shards=2, seed=0, durability=durability)


def main() -> None:
    rng = np.random.default_rng(3)
    x_true = np.linspace(-1.0, 1.0, N)
    checkpoint_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
    print(f"checkpoint directory: {checkpoint_dir}")

    server = make_server(checkpoint_dir)
    sid = server.open_stream(N, mode="sliding", bucket_rows=512,
                             window_buckets=4, detector=False)
    for _ in range(BATCHES):
        rows = rng.standard_normal((BATCH, N))
        targets = rows @ x_true + 0.05 * rng.standard_normal(BATCH)
        server.append_rows(sid, rows, targets)  # WAL'd, then folded
    before = server.query_solution(sid)
    telemetry = server.telemetry
    print(f"streamed {BATCHES} batches into session {sid}: "
          f"{telemetry.checkpoints_written} checkpoints, "
          f"{telemetry.wal_appends} WAL appends")
    print(f"pre-crash  x[:4] = {np.round(before.x[:4], 6)}")

    del server  # crash: no save(), no clean close -- only the files survive

    recovered = make_server(checkpoint_dir)
    report = recovered.restore()
    assert report.ok, f"restore failed: {report.failed}"
    replayed = report.restored[sid]
    print(f"restored session {sid}: last checkpoint + {replayed} WAL "
          f"batch(es) replayed")

    after = recovered.query_solution(sid)
    print(f"post-crash x[:4] = {np.round(after.x[:4], 6)}")
    exact = np.array_equal(before.x, after.x)
    print(f"recovered solution identical to pre-crash: {exact}")
    assert exact, "recovery should be exact"

    recovered.close_stream(sid)  # terminal: deletes the durable state too


if __name__ == "__main__":
    main()
