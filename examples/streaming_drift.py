#!/usr/bin/env python3
"""Online sketch-and-solve under drift: ingest, detect, reset, recover.

A regression model is kept fresh over a row stream whose ground-truth
coefficients jump halfway through (a piecewise-stationary stream).  The
StreamingSolver never stores the stream -- only the hashed-CountSketch
summary of its window -- yet:

* each arriving batch costs O(batch * n) to fold in, independent of how
  many rows have streamed past;
* the drift detector notices the shift from the batches' out-of-sample
  residuals, resets the window, and re-solves through the adaptive planner;
* queries between re-solves are free (the solution is cached until the
  window changes).

Run:  PYTHONPATH=src python examples/streaming_drift.py
"""

import numpy as np

from repro.streaming import StreamingSolver
from repro.workloads.streams import piecewise_stationary_stream

N = 16          # features
BATCH = 256     # rows per arriving batch
SEGMENT = 4096  # rows per stationary regime


def main() -> None:
    stream = piecewise_stationary_stream(
        N, rows_per_segment=SEGMENT, n_segments=2, batch_size=BATCH,
        noise_std=0.05, seed=7,
    )
    x_before, x_after = stream.segment_truths
    print(f"stream: {stream.total_rows} rows, coefficient shift at row "
          f"{stream.change_points[0]} (|x_new - x_old| = "
          f"{np.linalg.norm(x_after - x_before):.2f})")
    print()

    engine = StreamingSolver(N, mode="landmark", policy="cheapest_accurate", seed=0)
    for i, batch in enumerate(stream):
        report = engine.ingest(batch.rows, batch.targets)
        marker = ""
        if report.drift is not None:
            marker = f"  <-- DRIFT ({report.drift.kind}): window reset + re-solve"
        if i % 4 == 0 or report.drift is not None:
            resid = report.batch_residual
            shown = f"{resid:.3f}" if np.isfinite(resid) else "  n/a"
            print(f"  batch {i:2d} (segment {batch.segment}): "
                  f"out-of-sample residual {shown}{marker}")

    sol = engine.solution()
    err = np.linalg.norm(sol.x - x_after) / np.linalg.norm(x_after)
    stats = engine.stats()
    print()
    print(f"final model (served by '{sol.executed_solver}', "
          f"planned '{sol.planned_solver}', chain {'->'.join(sol.attempted)}):")
    print(f"  coefficient error vs post-shift truth : {err:.3e}")
    print(f"  window residual                       : {sol.relative_residual:.3e}")
    print(f"  drift events / re-solves              : "
          f"{int(stats['drift_events'])} / {int(stats['resolve_count'])}")
    print(f"  simulated ingest rate                 : "
          f"{stats['ingest_rows_per_second']:.2e} rows/s (H100 cost model)")
    print()
    print("The stream was never materialised: every batch was folded into the")
    print("k x (n+1) window sketch, the detector caught the regime change from")
    print("residual energy alone, and the re-solve routed through the planner.")


if __name__ == "__main__":
    main()
