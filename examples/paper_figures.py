#!/usr/bin/env python3
"""Regenerate every table and figure of the paper from the command line.

Usage:
    python examples/paper_figures.py               # everything, default scales
    python examples/paper_figures.py fig2 fig5     # just the named artefacts
    python examples/paper_figures.py --scale scaled fig6

Timing figures (2-5) are evaluated with the analytic H100 cost model at the
paper's true sizes (d up to 2^23); accuracy figures (6-8) execute real
floating point on a scaled-down grid ('quick' by default, 'scaled' for the
larger 2^15-2^17 grid the EXPERIMENTS.md tables use).
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    headline_speedup,
    section7_distributed,
    table1,
)
from repro.harness.report import format_table, render_breakdown_rows, render_figure_rows
from repro.harness.runner import SweepConfig

ARTEFACTS = ("table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "sec7")


def run(artefact: str, scale: str) -> str:
    """Produce the text rendering for one paper artefact."""
    paper_cfg = SweepConfig(scale="paper", repetitions=1)
    accuracy_cfg = SweepConfig(scale=scale, numeric=True, repetitions=1)

    if artefact == "table1":
        return format_table(table1(), title="Table 1: sketch complexities (d=2^22, n=128, eps=0.5)")
    if artefact == "fig2":
        rows = figure2(paper_cfg)
        return "\n\n".join(
            [
                render_figure_rows(rows, "total_seconds", scale=1e3, unit="ms",
                                   title="Figure 2: total sketch time"),
                render_figure_rows(rows, "gen_seconds", scale=1e3, unit="ms",
                                   title="Figure 2: sketch generation time"),
            ]
        )
    if artefact == "fig3":
        rows = figure3(paper_cfg)
        return render_figure_rows(rows, "percent_peak_bandwidth", unit="%",
                                  title="Figure 3: percent of peak memory throughput")
    if artefact == "fig4":
        rows = figure4(paper_cfg)
        return render_figure_rows(rows, "percent_peak_flops", unit="%",
                                  title="Figure 4: percent of peak FLOP/s")
    if artefact == "fig5":
        rows = figure5(paper_cfg)
        best = headline_speedup(rows)
        text = render_figure_rows(rows, "total_seconds", scale=1e3, unit="ms",
                                  title="Figure 5: least-squares solve time")
        text += "\n\n" + render_breakdown_rows(
            [r for r in rows if r["d"] == (1 << 22)], title="Figure 5 breakdown (d=2^22)"
        )
        text += (
            f"\n\nHeadline: multisketch sketch-and-solve is {100 * best['speedup']:.0f}% faster than "
            f"the normal equations at d={best['d']}, n={best['n']} (paper: up to 77%)."
        )
        return text
    if artefact == "fig6":
        return render_figure_rows(figure6(accuracy_cfg), "relative_residual",
                                  title=f"Figure 6: relative residual, easy problem ({scale} grid)")
    if artefact == "fig7":
        return render_figure_rows(figure7(accuracy_cfg), "relative_residual",
                                  title=f"Figure 7: relative residual, hard problem ({scale} grid)")
    if artefact == "fig8":
        d = (1 << 17) if scale == "scaled" else (1 << 13)
        rows = figure8(d=d, n=16)
        return render_figure_rows(rows, "relative_residual",
                                  title=f"Figure 8: residual vs cond(A) (d={d}, n=16)")
    if artefact == "sec7":
        rows = section7_distributed()
        return format_table(rows, columns=["p", "method", "embedding_dim", "message_bytes",
                                           "broadcast_bytes", "comm_seconds"],
                            title="Section 7: distributed communication costs (d=2^22, n=128)")
    raise ValueError(f"unknown artefact '{artefact}'")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("artefacts", nargs="*", default=list(ARTEFACTS),
                        help=f"which artefacts to regenerate (default: all of {', '.join(ARTEFACTS)})")
    parser.add_argument("--scale", choices=("quick", "scaled"), default="quick",
                        help="numeric grid used for the accuracy figures (6-8)")
    args = parser.parse_args(argv)

    for artefact in args.artefacts:
        if artefact not in ARTEFACTS:
            parser.error(f"unknown artefact '{artefact}' (choose from {ARTEFACTS})")
        print()
        print(run(artefact, args.scale))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
