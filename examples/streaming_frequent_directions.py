#!/usr/bin/env python3
"""Streaming CountSketch: sketching a matrix that never fits in memory at once.

The paper's future-work section (Section 8) proposes building the CountSketch
on the fly from a hash so it suits streaming applications -- this example
shows that workflow.  Rows of a tall matrix arrive in batches (think: sensor
readings, log records, minibatches); the StreamingCountSketch folds each batch
into a fixed-size ``k x n`` summary without ever storing the full matrix or
any random state beyond a seed.  At the end the summary is used to
approximately solve a regression problem against the stream.

Run:  python examples/streaming_frequent_directions.py
"""

import numpy as np

from repro import GPUExecutor, StreamingCountSketch
from repro.gpu.arrays import DeviceArray

D, N = 1 << 17, 32          # 131,072 streamed rows, 32 features
BATCH = 4096                 # rows per arriving batch
K = 2 * N * N                # CountSketch embedding dimension (paper's 2 n^2)


def generate_batch(rng: np.random.Generator, start: int, size: int, x_true: np.ndarray):
    """Simulate one arriving batch: features and noisy targets."""
    rows = rng.standard_normal((size, N))
    targets = rows @ x_true + 0.05 * rng.standard_normal(size)
    return rows, targets


def main() -> None:
    rng = np.random.default_rng(0)
    x_true = np.linspace(-1.0, 1.0, N)

    executor = GPUExecutor(seed=0, track_memory=False)

    # One streaming sketch for the features and one for the targets; both are
    # driven by the same hash seed so they stay aligned row-for-row.
    feature_sketch = StreamingCountSketch(D, K, executor=executor, seed=42)
    target_sketch = StreamingCountSketch(D, K, executor=executor, seed=42)
    feature_sketch.generate()
    target_sketch.generate()
    feature_sketch.begin(N)
    target_sketch.begin(1)

    rows_seen = 0
    for start in range(0, D, BATCH):
        size = min(BATCH, D - start)
        rows, targets = generate_batch(rng, start, size, x_true)
        indices = np.arange(start, start + size)
        feature_sketch.update(indices, rows)
        target_sketch.update(indices, targets.reshape(-1, 1))
        rows_seen += size
        if start // BATCH % 8 == 0:
            print(f"  streamed {rows_seen:7d} / {D} rows "
                  f"(summary is {K} x {N}, {K * N * 8 / 1e6:.1f} MB, independent of the stream length)")

    sketched_a: DeviceArray = feature_sketch.result()
    sketched_b: DeviceArray = target_sketch.result()

    # Solve the sketched regression problem: min || S b - S A x ||.
    y = sketched_a.to_host()
    z = sketched_b.to_host()[:, 0]
    x_hat, *_ = np.linalg.lstsq(y, z, rcond=None)

    err = np.linalg.norm(x_hat - x_true) / np.linalg.norm(x_true)
    print()
    print(f"Recovered regression coefficients from the sketch alone:")
    print(f"  relative coefficient error   : {err:.3e}")
    print(f"  simulated sketching time     : {executor.elapsed * 1e3:.2f} ms (H100 cost model)")
    print(f"  stored random state          : just the 64-bit seed (hash-based row map/signs)")
    print()
    print("The full matrix was never materialised: each batch was folded into the")
    print("k x n CountSketch summary as it arrived, which is exactly the streaming")
    print("use case the paper's Section 8 points at.")


if __name__ == "__main__":
    main()
