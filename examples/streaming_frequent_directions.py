#!/usr/bin/env python3
"""Streaming low-rank approximation of a matrix that never fits in memory.

Rows of a tall matrix arrive in batches (sensor readings, log records,
minibatches); a :class:`repro.problems.FrequentDirections` accumulator folds
each batch into a fixed ``2*ell x n`` buffer -- the full matrix is never
materialised, and the summary size is independent of the stream length.  At
the end the sketch's top right singular vectors give a rank-k approximation
provably within ``sqrt(1 + k/(ell-k))`` of the truncated-SVD optimum, and
the same summary solves a regression against the stream.

The batch-side counterpart (``lowrank_approx(a, k, method="rangefinder")``)
and the serving endpoint (``SketchServer.approx_lowrank``) share this code
path; ``SketchServer.open_stream(n, mode="fd")`` runs the same accumulator
as a live session's window summary.

Run:  PYTHONPATH=src python examples/streaming_frequent_directions.py
"""

import numpy as np

from repro import GPUExecutor
from repro.problems import FrequentDirections
from repro.theory.complexity import fd_error_bound
from repro.workloads import decaying_spectrum_matrix

D, N = 1 << 15, 64          # 32,768 streamed rows, 64 features
RANK = 8                    # target rank (the spectrum plateaus here)
ELL = 2 * RANK              # FD sketch size: ell = 2k => bound sqrt(2)
BATCH = 2048                # rows per arriving batch


def main() -> None:
    # A matrix with a known spectrum, so the optimum is closed-form.
    problem = decaying_spectrum_matrix(D, N, rank=RANK, decay=0.5, seed=0)
    executor = GPUExecutor(seed=0, track_memory=False)
    fd = FrequentDirections(N, ELL, executor=executor)

    for start in range(0, D, BATCH):
        fd.update(problem.a[start : start + BATCH])
        if (start // BATCH) % 4 == 0:
            print(
                f"  streamed {fd.rows_seen:6d} / {D} rows "
                f"(summary is {2 * ELL} x {N} = "
                f"{2 * ELL * N * 8 / 1e3:.0f} kB, {fd.shrink_count} shrinks)"
            )

    # Rank-k basis from the summary alone; project the stream onto it.
    v, _singular_values = fd.lowrank(RANK)
    approx_error = np.linalg.norm(problem.a - (problem.a @ v) @ v.T) / np.linalg.norm(problem.a)
    optimum = problem.optimal_error(RANK)
    bound = fd_error_bound(problem.singular_values, ELL, RANK)

    print()
    print(f"rank-{RANK} approximation from the {ELL}-row summary:")
    print(f"  relative Frobenius error     : {approx_error:.4f}")
    print(f"  truncated-SVD optimum        : {optimum:.4f}  (ratio {approx_error / optimum:.3f})")
    print(f"  FD guarantee at ell = {ELL}    : <= {bound:.3f} x optimum")
    print(f"  simulated sketching time     : {executor.elapsed * 1e3:.2f} ms (H100 cost model)")
    assert approx_error <= bound * optimum * (1 + 1e-9)

    # The same path is one serving call: the endpoint streams the rows
    # through an identical accumulator on a scheduler-chosen shard.
    from repro import SketchServer

    server = SketchServer(shards=2)
    response = server.approx_lowrank(problem.a, RANK, method="frequent_directions")
    print(f"  SketchServer.approx_lowrank  : error {response.relative_error:.4f} "
          f"on shard {response.shard} ({response.simulated_seconds * 1e3:.2f} ms incl. transfer)")
    assert abs(response.relative_error - approx_error) < 1e-12
    print()
    print("The stream was summarised in one pass with fixed memory; the same")
    print("accumulator backs lowrank_approx(method='frequent_directions'),")
    print("SketchServer.approx_lowrank, and open_stream(mode='fd') sessions.")


if __name__ == "__main__":
    main()
