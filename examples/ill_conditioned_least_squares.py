#!/usr/bin/env python3
"""Stability study: solving increasingly ill-conditioned least-squares problems.

Reproduces the story of the paper's Figure 8 on a laptop-sized problem:
``b = A e`` (an exact solution exists) while ``kappa(A)`` is swept from 1 to
1e16.  The normal equations square the condition number and fall over around
``kappa ~ u^{-1/2} ~ 1e8``; the multisketched sketch-and-solve solver and the
rand_cholQR solver (Algorithm 5) keep tracking the Householder-QR reference.

Run:  python examples/ill_conditioned_least_squares.py
"""

import numpy as np

from repro import GPUExecutor, count_gauss, normal_equations, qr_solve, rand_cholqr_lstsq, sketch_and_solve
from repro.linalg.conditioning import matrix_with_condition

D, N = 1 << 14, 16
CONDITION_NUMBERS = [1e0, 1e2, 1e4, 1e6, 1e8, 1e10, 1e12, 1e14, 1e16]


def solve_all(cond: float, seed: int = 0) -> dict:
    """Solve one problem with every method; return relative residuals."""
    a = matrix_with_condition(D, N, cond, seed=seed)
    b = a @ np.ones(N)
    executor = GPUExecutor(seed=seed, track_memory=False)

    results = {}
    ne = normal_equations(a, b, executor=executor)
    results["Normal Eq"] = "FAILED" if ne.failed else ne.relative_residual
    ss = sketch_and_solve(a, b, count_gauss(D, N, executor=executor, seed=1), executor=executor)
    results["Multisketch S&S"] = ss.relative_residual
    rc = rand_cholqr_lstsq(a, b, count_gauss(D, N, executor=executor, seed=2), executor=executor)
    results["rand_cholQR"] = "FAILED" if rc.failed else rc.relative_residual
    qr = qr_solve(a, b, executor=executor)
    results["Householder QR"] = qr.relative_residual
    return results


def main() -> None:
    methods = ["Normal Eq", "Multisketch S&S", "rand_cholQR", "Householder QR"]
    print(f"Relative residual ||b - Ax|| / ||b|| for b = A·ones, A is {D} x {N}")
    header = "cond(A)".ljust(10) + "".join(m.ljust(20) for m in methods)
    print(header)
    print("-" * len(header))
    for cond in CONDITION_NUMBERS:
        results = solve_all(cond)
        cells = []
        for m in methods:
            v = results[m]
            cells.append((v if isinstance(v, str) else f"{v:.3e}").ljust(20))
        print(f"{cond:<10.0e}" + "".join(cells))

    print()
    print("Reading the table (paper Figure 8):")
    print("  * the normal equations degrade like kappa^2 and fail beyond ~1e8;")
    print("  * sketch-and-solve and rand_cholQR stay at machine-precision-level")
    print("    residuals up to kappa ~ 1e14-1e16, matching the QR reference;")
    print("  * sketch-and-solve achieves this while being the fastest of the")
    print("    stable methods (see examples/paper_figures.py for the timings).")


if __name__ == "__main__":
    main()
