#!/usr/bin/env python3
"""Serving sketch-and-solve traffic: micro-batching, caching, sharding.

A regression service receives a stream of `solve(A, b)` requests: many
observation vectors scored against a handful of shared design matrices (the
classic multi-tenant serving shape).  This example pushes the same synthetic
traffic through

1. a naive loop -- every request builds its own sketch, sketches A from
   scratch and runs its own QR; and
2. the `SketchServer` -- requests sharing a design matrix are fused into one
   multi-RHS sketch-and-solve, sketch operators are cached across requests,
   and batches spread over a pool of two simulated H100 shards;

then prints the throughput, latency percentiles and cache statistics the
server's telemetry collects.  All times come from the deterministic roofline
cost model, so the numbers are reproducible anywhere.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

import numpy as np

from repro import SketchServer, naive_solve_loop
from repro.harness.report import format_table

N = 32                       # features per design matrix
TENANT_ROWS = (1 << 15, 1 << 14, 1 << 14)  # per-tenant design-matrix heights
REQUESTS = 120               # solve requests across all tenants
MAX_BATCH = 16


def main() -> None:
    rng = np.random.default_rng(0)
    designs = [rng.standard_normal((d, N)) for d in TENANT_ROWS]
    x_true = np.linspace(-1.0, 1.0, N)

    traffic = []
    for i in range(REQUESTS):
        a = designs[i % len(designs)]
        b = a @ x_true + 0.01 * rng.standard_normal(a.shape[0])
        traffic.append((a, b))

    sizes = ", ".join(f"{d}x{N}" for d in TENANT_ROWS)
    print(f"Traffic: {REQUESTS} solve requests, {len(designs)} tenants (A sizes: {sizes})\n")

    # -- naive reference: one request at a time, no reuse ----------------
    naive = naive_solve_loop(traffic, kind="multisketch", seed=7)

    # -- served: micro-batched, cached, sharded --------------------------
    server = SketchServer(kind="multisketch", shards=2, max_batch=MAX_BATCH, seed=7)
    for a, b in traffic:
        server.submit(a, b)
    responses = server.flush()
    stats = server.stats()

    speedup = stats["requests_per_second"] / naive["requests_per_second"]
    print(format_table(
        [
            {"mode": "naive loop", "req_per_s": naive["requests_per_second"],
             "p99_latency_us": None, "cache_hit_rate": None},
            {"mode": "SketchServer", "req_per_s": stats["requests_per_second"],
             "p99_latency_us": stats["p99_seconds"] * 1e6,
             "cache_hit_rate": stats["cache_hit_rate"]},
        ],
        title=f"Throughput on simulated H100 shards -- speedup {speedup:.1f}x",
    ))

    print()
    print(f"  batches executed     : {int(stats['batches_executed'])} "
          f"(mean fused size {stats['mean_batch_size']:.1f} RHS)")
    print(f"  shard busy seconds   : "
          + ", ".join(f"shard{i}={stats[f'shard{i}_busy_seconds']*1e6:.0f}us"
                      for i in range(int(stats["shards"]))))
    print(f"  cross-shard traffic  : {stats['comm_bytes']/1024:.1f} KiB "
          f"({stats['comm_seconds']*1e6:.1f} us, alpha-beta model)")
    print(f"  worst rel. residual  : {max(r.relative_residual for r in responses):.3e}")
    print()
    print("Every response is bit-identical to an unbatched solve with the same")
    print("cached operator: fusing requests changes the schedule, not the math.")


if __name__ == "__main__":
    main()
