#!/usr/bin/env python3
"""Ridge regression through the planner: lambda changes the routing.

Tikhonov regularization is least squares on the augmented system
``[A; sqrt(lam) I] x = [b; 0]``, and the size of lambda decides how hard
that system is: the effective conditioning is
``sqrt((smax^2 + lam) / (smin^2 + lam))``.  This example solves the same
ill-conditioned problem at three lambdas and shows the planner responding:

* a healthy lambda caps the effective conditioning, so the cheap
  regularized normal equations are admissible;
* a vanishing lambda leaves the problem as hard as the unregularized one,
  so the planner routes away from them (or rescues a breakdown through the
  ridge fallback chain);
* either way the residual matches a direct dense ridge solve.

Run:  PYTHONPATH=src python examples/ridge_regression.py
"""

import numpy as np

from repro.problems import dense_ridge_reference, ridge_residuals, solve_ridge
from repro.workloads import make_ridge_problem

D, N = 1 << 16, 64          # compute-bound size: routing differences visible
COND = 1e10                 # kappa(A): far beyond the normal equations' 1e8


def main() -> None:
    print(f"Ridge on a {D} x {N} matrix with kappa(A) = {COND:.0e}\n")
    header = f"{'lam_rel':>10} | {'eff. kappa':>10} | {'executed (attempted)':<42} | {'resid/ref':>9}"
    print(header)
    print("-" * len(header))
    for lam_rel in (1e-2, 1e-6, 1e-16):
        problem = make_ridge_problem(D, N, cond=COND, lam_rel=lam_rel, seed=1)
        result = solve_ridge(problem.a, problem.b, problem.lam)
        x_ref = dense_ridge_reference(problem.a, problem.b, problem.lam)
        _, ref_rel, _ = ridge_residuals(problem.a, problem.b, x_ref, problem.lam)
        ratio = result.relative_residual / ref_rel if ref_rel > 0 else float("inf")
        attempted = result.extra.get("attempted", result.method)
        executed = result.attempted_solvers[-1]
        print(
            f"{lam_rel:>10.0e} | {problem.effective_condition():>10.2e} | "
            f"{executed + ' (' + attempted + ')':<42} | {ratio:>9.4f}"
        )
        assert not result.failed and ratio <= 1.1
    print()
    print("Every row matched the dense direct solve within 1.1x; the planner")
    print("picked the cheapest ridge solver whose stability floor held at the")
    print("lambda-shifted effective conditioning, falling back on breakdown.")


if __name__ == "__main__":
    main()
