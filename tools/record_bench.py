#!/usr/bin/env python3
"""Record (or validate) the perf-trajectory file ``BENCH_<pr>.json``.

Runs :func:`repro.harness.experiments.perf_trajectory` at its CI scale and
writes the schema-checked payload (see :mod:`repro.obs.bench`) next to the
repository root, so every PR ships the serving/runtime/streaming numbers it
was merged with and a regression between two PRs is one ``diff`` away.

Record:    python tools/record_bench.py --pr 8
Validate:  python tools/record_bench.py --validate BENCH_8.json

CI runs the record step on every build, uploads the file as an artifact,
fails when it is missing or invalid (the ``--validate`` path), and then
diffs it against the previous record with ``tools/compare_bench.py``.

Exit status: 0 on success; 1 when validation fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pr", type=int, default=8, help="PR number stamped into the record")
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output path (default: <repo root>/BENCH_<pr>.json)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed (default 0)")
    parser.add_argument(
        "--validate",
        type=pathlib.Path,
        metavar="PATH",
        default=None,
        help="validate an existing record instead of running the experiments",
    )
    args = parser.parse_args(argv)

    from repro.obs.bench import validate_bench, write_bench

    if args.validate is not None:
        if not args.validate.exists():
            print(f"FAIL: {args.validate} does not exist", file=sys.stderr)
            return 1
        try:
            payload = json.loads(args.validate.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"FAIL: {args.validate} is not valid JSON: {exc}", file=sys.stderr)
            return 1
        errors = validate_bench(payload)
        if errors:
            for error in errors:
                print(f"FAIL: {args.validate}: {error}", file=sys.stderr)
            return 1
        print(f"OK: {args.validate} is a valid perf-trajectory record")
        return 0

    from repro.harness.experiments import perf_trajectory

    out = args.out if args.out is not None else REPO_ROOT / f"BENCH_{args.pr}.json"
    payload = perf_trajectory(pr=args.pr, seed=args.seed)
    write_bench(payload, str(out))
    print(f"wrote {out}")
    for section in ("throughput", "residuals", "counters", "streaming"):
        body = payload[section]
        rendered = ", ".join(f"{k}={v:.4g}" for k, v in sorted(body.items()))
        print(f"  {section}: {rendered}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
