#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repository's Markdown files.

Scans every tracked ``*.md`` file (repository root, ``docs/``, and any
other directory) for inline Markdown links and image references
``[text](target)`` and checks that relative targets resolve to an existing
file or directory.  External links (``http(s)://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped; a relative target's own
``#fragment`` suffix is ignored when resolving the path.

Exit status: 0 when every intra-repo link resolves, 1 otherwise (one line
per broken link) -- which is what the CI docs step keys off.

Run:  python tools/check_doc_links.py  [root]
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline links/images. Deliberately simple: no reference-style links are
#: used in this repository, and nested parentheses in URLs are not either.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Target prefixes that are not intra-repo files.
_EXTERNAL = ("http://", "https://", "mailto:", "#")

#: Generated paper/retrieval artifacts, not maintained documentation: their
#: figure references point at assets that were never part of this
#: repository, so they are outside the docs contract this check enforces.
_GENERATED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def iter_markdown_files(root: pathlib.Path):
    """Every maintained ``*.md`` under ``root`` (VCS/cache dirs skipped)."""
    skip = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}
    for path in sorted(root.rglob("*.md")):
        if path.name in _GENERATED:
            continue
        if not skip.intersection(part for part in path.parts):
            yield path


def broken_links(markdown: pathlib.Path, root: pathlib.Path):
    """Yield ``(line_number, target)`` for each unresolvable relative link."""
    text = markdown.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = markdown.parent / path_part
            if not resolved.exists():
                yield lineno, target


def main(argv) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(__file__).parent.parent
    root = root.resolve()
    failures = 0
    checked = 0
    for markdown in iter_markdown_files(root):
        checked += 1
        for lineno, target in broken_links(markdown, root):
            failures += 1
            print(f"{markdown.relative_to(root)}:{lineno}: broken link -> {target}")
    print(f"checked {checked} markdown files: {failures} broken intra-repo links")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
