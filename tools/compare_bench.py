#!/usr/bin/env python3
"""Gate the perf trajectory: diff ``BENCH_<pr>.json`` against the previous record.

``tools/record_bench.py`` writes each PR's serving/runtime/streaming numbers;
this tool turns that accumulating trajectory into an enforced contract.  It
compares the current record against the previous one along the axes that
matter --

* throughput (``serving_requests_per_second``,
  ``concurrent_requests_per_second``): may not DROP by more than the
  threshold;
* per-lane tail latency (``lanes.<lane>.p95_seconds``): may not GROW by
  more than the threshold;
* solution quality (``residuals.concurrent_over_sync_ratio``,
  ``residuals.ridge_residual_ratio``): may not GROW by more than the
  threshold --

and exits non-zero past any threshold, so CI blocks the merge instead of
recording the regression for archaeologists.  The default thresholds are
deliberately generous: worker-thread interleaving makes the concurrent
numbers run-to-run noisy, and the gate exists to catch real regressions,
not scheduling jitter.

Compare:   python tools/compare_bench.py BENCH_8.json BENCH_6.json
Report:    python tools/compare_bench.py BENCH_8.json BENCH_6.json --report bench_compare.txt

Exit status: 0 when every axis is within threshold; 1 on regression or
unreadable/invalid input.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _relative_change(current: float, previous: float) -> float:
    """Signed relative change vs the previous record (0 when both are 0)."""
    if previous == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return (current - previous) / abs(previous)


def compare(
    current: dict,
    previous: dict,
    *,
    max_throughput_drop: float,
    max_p95_growth: float,
    max_residual_growth: float,
) -> Tuple[List[str], List[str]]:
    """Diff two validated bench payloads; returns (report lines, regressions)."""
    lines: List[str] = []
    regressions: List[str] = []
    lines.append(
        f"perf trajectory: PR {previous.get('pr')} -> PR {current.get('pr')}"
    )

    for field in ("serving_requests_per_second", "concurrent_requests_per_second"):
        cur = float(current["throughput"][field])
        prev = float(previous["throughput"][field])
        change = _relative_change(cur, prev)
        lines.append(f"  throughput.{field}: {prev:.4g} -> {cur:.4g} ({change:+.1%})")
        if change < -max_throughput_drop:
            regressions.append(
                f"throughput.{field} dropped {-change:.1%} "
                f"(limit {max_throughput_drop:.0%}): {prev:.4g} -> {cur:.4g}"
            )

    shared_lanes = sorted(set(current["lanes"]) & set(previous["lanes"]))
    for lane in shared_lanes:
        cur = float(current["lanes"][lane]["p95_seconds"])
        prev = float(previous["lanes"][lane]["p95_seconds"])
        change = _relative_change(cur, prev)
        lines.append(f"  lanes.{lane}.p95_seconds: {prev:.4g} -> {cur:.4g} ({change:+.1%})")
        if change > max_p95_growth:
            regressions.append(
                f"lanes.{lane}.p95_seconds grew {change:.1%} "
                f"(limit {max_p95_growth:.0%}): {prev:.4g} -> {cur:.4g}"
            )
    for lane in sorted(set(previous["lanes"]) - set(current["lanes"])):
        regressions.append(f"lane {lane!r} present in previous record but missing now")

    for field in ("concurrent_over_sync_ratio", "ridge_residual_ratio"):
        cur = float(current["residuals"][field])
        prev = float(previous["residuals"][field])
        change = _relative_change(cur, prev)
        lines.append(f"  residuals.{field}: {prev:.4g} -> {cur:.4g} ({change:+.1%})")
        if change > max_residual_growth:
            regressions.append(
                f"residuals.{field} grew {change:.1%} "
                f"(limit {max_residual_growth:.0%}): {prev:.4g} -> {cur:.4g}"
            )

    if regressions:
        lines.append("REGRESSIONS:")
        lines.extend(f"  {r}" for r in regressions)
    else:
        lines.append("no regressions past thresholds")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=pathlib.Path, help="this PR's BENCH_<pr>.json")
    parser.add_argument("previous", type=pathlib.Path, help="the previous BENCH_<pr>.json")
    parser.add_argument(
        "--max-throughput-drop",
        type=float,
        default=0.25,
        help="tolerated relative throughput drop (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--max-p95-growth",
        type=float,
        default=1.0,
        help="tolerated relative lane-p95 growth (default 1.0 = 100%%)",
    )
    parser.add_argument(
        "--max-residual-growth",
        type=float,
        default=0.5,
        help="tolerated relative residual-ratio growth (default 0.5 = 50%%)",
    )
    parser.add_argument(
        "--report",
        type=pathlib.Path,
        default=None,
        help="also write the comparison report to this path (CI artifact)",
    )
    args = parser.parse_args(argv)

    import json

    from repro.obs.bench import validate_bench

    payloads = []
    for path in (args.current, args.previous):
        if not path.exists():
            print(f"FAIL: {path} does not exist", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"FAIL: {path} is not valid JSON: {exc}", file=sys.stderr)
            return 1
        errors = validate_bench(payload)
        if errors:
            for error in errors:
                print(f"FAIL: {path}: {error}", file=sys.stderr)
            return 1
        payloads.append(payload)

    lines, regressions = compare(
        payloads[0],
        payloads[1],
        max_throughput_drop=args.max_throughput_drop,
        max_p95_growth=args.max_p95_growth,
        max_residual_growth=args.max_residual_growth,
    )
    report = "\n".join(lines)
    print(report)
    if args.report is not None:
        args.report.write_text(report + "\n", encoding="utf-8")
        print(f"wrote {args.report}")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
