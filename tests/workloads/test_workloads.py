"""Tests for the workload generators (problem sizes and least-squares problems)."""

import numpy as np
import pytest

from repro.linalg.conditioning import condition_number
from repro.workloads.least_squares import (
    condition_sweep_problem,
    easy_problem,
    hard_problem,
    make_lstsq_problem,
)
from repro.workloads.matrices import (
    PAPER_D_VALUES,
    PAPER_N_VALUES,
    SCALED_D_VALUES,
    grid_as_list,
    matrix_memory_footprint,
    paper_size_grid,
    random_dense_matrix,
)


class TestSizeGrid:
    def test_paper_values_match_section_6(self):
        assert PAPER_D_VALUES == (2**21, 2**22, 2**23)
        assert PAPER_N_VALUES == (32, 64, 128, 256)

    def test_largest_d_excludes_widest_n(self):
        grid = list(paper_size_grid(paper_scale=True))
        assert (2**23, 256) not in grid
        assert (2**23, 128) in grid
        assert (2**21, 256) in grid
        assert len(grid) == 11

    def test_scaled_grid_preserves_structure(self):
        grid = grid_as_list(paper_scale=False)
        assert len(grid) == 11
        assert all(d in SCALED_D_VALUES for d, _ in grid)

    def test_memory_footprint(self):
        # The paper's largest matrix: 2^23 x 128 doubles = 8.6 GB.
        assert matrix_memory_footprint(2**23, 128) == pytest.approx(8.59e9, rel=0.01)


class TestRandomMatrices:
    def test_uniform_entries_in_range(self):
        a = random_dense_matrix(1000, 8, seed=1)
        assert a.shape == (1000, 8)
        assert a.min() >= -1.0 and a.max() < 1.0

    def test_gaussian_distribution(self):
        a = random_dense_matrix(5000, 4, seed=2, distribution="gaussian")
        assert abs(a.mean()) < 0.05
        assert a.std() == pytest.approx(1.0, rel=0.05)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            random_dense_matrix(100, 4, seed=3), random_dense_matrix(100, 4, seed=3)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            random_dense_matrix(0, 4)
        with pytest.raises(ValueError):
            random_dense_matrix(10, 4, distribution="cauchy")


class TestLeastSquaresProblems:
    def test_easy_problem_parameters(self):
        p = easy_problem(2048, 16, seed=1)
        assert p.kind == "easy"
        assert p.noise_mean == 0.0
        assert p.noise_std == pytest.approx(np.sqrt(0.01))
        assert p.d == 2048 and p.n == 16
        assert condition_number(p.a) == pytest.approx(100.0, rel=1e-6)

    def test_hard_problem_has_larger_residual(self):
        easy = easy_problem(4096, 16, seed=2)
        hard = hard_problem(4096, 16, seed=2)
        assert hard.true_relative_residual() > easy.true_relative_residual()

    def test_zero_noise_gives_consistent_system(self):
        p = make_lstsq_problem(1024, 8, noise_std=0.0, seed=3)
        np.testing.assert_allclose(p.b, p.a @ p.x_exact)
        assert p.true_relative_residual() < 1e-12

    def test_condition_sweep_problem(self):
        p = condition_sweep_problem(1e6, d=2048, n=16, seed=4)
        assert p.kind == "exact"
        assert condition_number(p.a) == pytest.approx(1e6, rel=1e-4)
        np.testing.assert_allclose(p.b, p.a @ np.ones(16))

    def test_exact_solution_is_all_ones(self):
        p = easy_problem(1024, 8, seed=5)
        np.testing.assert_array_equal(p.x_exact, np.ones(8))

    def test_overdetermined_enforced(self):
        with pytest.raises(ValueError):
            make_lstsq_problem(8, 16)

    def test_reproducible_problems(self):
        p1 = hard_problem(512, 8, seed=6)
        p2 = hard_problem(512, 8, seed=6)
        np.testing.assert_array_equal(p1.a, p2.a)
        np.testing.assert_array_equal(p1.b, p2.b)
