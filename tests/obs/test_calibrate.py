"""CalibratedEstimator: convergence, bucket isolation, gating, span ingest."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.linalg.registry import SolveSpec, get_solver
from repro.obs.calibrate import CalibratedEstimator, CalibrationKey, shape_bucket
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

SOLVER = "sketch_and_solve"


def _spec(d=4096, n=32, nrhs=1, **kw) -> SolveSpec:
    return SolveSpec(d=d, n=n, nrhs=nrhs, **kw)


def _feed(est, spec, ratio, count, solver=SOLVER):
    """Feed ``count`` observations at a planted measured/analytic ratio."""
    analytic = get_solver(solver).estimate_seconds(spec)
    for _ in range(count):
        est.observe(solver, spec, analytic * ratio, analytic_seconds=analytic)
    return analytic


class TestShapeBucket:
    def test_octave_buckets(self):
        assert shape_bucket(4096, 32, 1) == (12, 5, 0)
        assert shape_bucket(4097, 33, 1) == (12, 5, 0)  # same octave
        assert shape_bucket(8192, 64, 2) == (13, 6, 1)

    def test_degenerate_dims_clamp(self):
        assert shape_bucket(0, 0, 0) == (0, 0, 0)


class TestConvergence:
    def test_converges_to_planted_ratio(self):
        est = CalibratedEstimator(alpha=0.3, min_samples=3)
        spec = _spec()
        _feed(est, spec, ratio=0.4, count=40)
        factor = est.factor(SOLVER, spec)
        assert factor == pytest.approx(0.4, rel=0.05)

    def test_prediction_tracks_measured(self):
        est = CalibratedEstimator(alpha=0.3, min_samples=3)
        spec = _spec()
        analytic = _feed(est, spec, ratio=2.5, count=40)
        predicted = est.predict_seconds(spec, solver=SOLVER)
        assert predicted == pytest.approx(2.5 * analytic, rel=0.05)

    def test_first_sample_seeds_ewma(self):
        est = CalibratedEstimator(min_samples=1)
        spec = _spec()
        _feed(est, spec, ratio=0.5, count=1)
        assert est.factor(SOLVER, spec) == pytest.approx(0.5)


class TestBucketIsolation:
    def test_shapes_calibrate_independently(self):
        est = CalibratedEstimator(alpha=0.5, min_samples=2)
        small, large = _spec(d=1024, n=16), _spec(d=65536, n=256)
        _feed(est, small, ratio=0.3, count=10)
        _feed(est, large, ratio=3.0, count=10)
        assert est.factor(SOLVER, small) == pytest.approx(0.3, rel=0.05)
        assert est.factor(SOLVER, large) == pytest.approx(3.0, rel=0.05)

    def test_solver_families_calibrate_independently(self):
        est = CalibratedEstimator(alpha=0.5, min_samples=2)
        spec = _spec()
        _feed(est, spec, ratio=0.5, count=10, solver="sketch_and_solve")
        _feed(est, spec, ratio=2.0, count=10, solver="sketch_precond_lsqr")
        assert est.factor("sketch_and_solve", spec) == pytest.approx(0.5, rel=0.05)
        assert est.factor("sketch_precond_lsqr", spec) == pytest.approx(2.0, rel=0.05)

    def test_key_labels(self):
        key = CalibrationKey(solver=SOLVER, problem="least_squares", bucket=(12, 5, 0))
        assert key.labels() == {
            "solver": SOLVER, "problem": "least_squares", "bucket": "12x5x0",
        }


class TestMinSampleGate:
    def test_below_gate_predicts_analytic(self):
        est = CalibratedEstimator(min_samples=5)
        spec = _spec()
        analytic = _feed(est, spec, ratio=0.2, count=4)  # one short of the gate
        assert est.factor(SOLVER, spec) is None
        assert est.predict_seconds(spec, solver=SOLVER) == pytest.approx(analytic)

    def test_gate_opens_at_min_samples(self):
        est = CalibratedEstimator(min_samples=5)
        spec = _spec()
        _feed(est, spec, ratio=0.2, count=5)
        assert est.factor(SOLVER, spec) is not None
        assert est.samples(SOLVER, spec) == 5

    def test_unseen_bucket_predicts_analytic(self):
        est = CalibratedEstimator()
        spec = _spec()
        analytic = get_solver(SOLVER).estimate_seconds(spec)
        assert est.predict_seconds(spec, solver=SOLVER) == pytest.approx(analytic)


class TestRobustness:
    def test_outlier_ratio_is_clipped(self):
        est = CalibratedEstimator(alpha=0.5, min_samples=1, clip=4.0)
        spec = _spec()
        analytic = get_solver(SOLVER).estimate_seconds(spec)
        est.observe(SOLVER, spec, analytic * 1000.0, analytic_seconds=analytic)
        assert est.factor(SOLVER, spec) == pytest.approx(4.0)
        clipped = est.registry.get("calibration_clipped_total", solver=SOLVER)
        assert clipped is not None and clipped.value == 1.0

    def test_nonpositive_samples_rejected(self):
        est = CalibratedEstimator()
        spec = _spec()
        assert est.observe(SOLVER, spec, 0.0) is None
        assert est.observe(SOLVER, spec, float("nan")) is None
        assert est.samples(SOLVER, spec) == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CalibratedEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            CalibratedEstimator(min_samples=0)
        with pytest.raises(ValueError):
            CalibratedEstimator(clip=1.0)


class TestSelfAssessment:
    def test_error_histograms_recorded(self):
        registry = MetricsRegistry()
        est = CalibratedEstimator(registry, alpha=0.5, min_samples=2)
        spec = _spec()
        _feed(est, spec, ratio=0.5, count=20)
        summary = est.error_summary()
        # Analytic is off by 2x (|1/0.5 - 1| = 1); warmed calibration is near 0.
        assert summary["analytic_median_rel_error"] == pytest.approx(1.0)
        assert summary["calibrated_median_rel_error"] < 0.1
        for model in ("calibrated", "analytic"):
            hist = registry.get("calibration_relative_error", model=model)
            assert hist is not None and hist.count == 20

    def test_factor_gauge_exported(self):
        est = CalibratedEstimator(alpha=0.5, min_samples=1)
        spec = _spec()
        _feed(est, spec, ratio=0.5, count=8)
        key = est.key_for(SOLVER, spec)
        gauge = est.registry.get("calibration_factor", **key.labels())
        assert gauge is not None
        assert gauge.value == pytest.approx(est.factor(SOLVER, spec))

    def test_snapshot_shape(self):
        est = CalibratedEstimator(min_samples=1)
        spec = _spec()
        _feed(est, spec, ratio=0.7, count=3)
        snap = est.snapshot()
        assert len(snap) == 1
        (state,) = snap.values()
        assert state["samples"] == 3.0


class TestCostSource:
    def test_cost_source_applies_factor(self):
        est = CalibratedEstimator(alpha=0.5, min_samples=1)
        spec = _spec()
        analytic = _feed(est, spec, ratio=0.5, count=10)
        source = est.as_cost_source()
        from repro.gpu.device import H100_SXM5

        corrected = source(SOLVER, spec, H100_SXM5, analytic)
        assert corrected == pytest.approx(0.5 * analytic, rel=0.05)

    def test_cost_source_passes_through_when_gated(self):
        est = CalibratedEstimator(min_samples=10)
        spec = _spec()
        source = est.as_cost_source()
        from repro.gpu.device import H100_SXM5

        assert source(SOLVER, spec, H100_SXM5, 1.25) == 1.25

    def test_planner_ranks_by_calibrated_costs(self):
        """A planted slow-down on the cheapest solver re-routes the plan."""
        from repro.linalg.planner import plan

        spec = _spec(cond_estimate=10.0, accuracy_target=1e-6)
        baseline = plan(None, spec, policy="cheapest_accurate")
        est = CalibratedEstimator(alpha=0.9, min_samples=1, clip=1e6)
        analytic = get_solver(baseline.solver).estimate_seconds(spec)
        # Teach the estimator the baseline winner is 1000x slower than analytic.
        for _ in range(5):
            est.observe(baseline.solver, spec, analytic * 1000.0, analytic_seconds=analytic)
        rerouted = plan(
            None, spec, policy="cheapest_accurate", cost_source=est.as_cost_source()
        )
        assert rerouted.solver != baseline.solver
        assert rerouted.costs[baseline.solver] > baseline.costs[baseline.solver]


class TestSpanIngest:
    def _run_traced_solve(self, tracer_kwargs=None):
        tracer = Tracer(**(tracer_kwargs or {}))
        spec = _spec(d=2048, n=16)
        analytic = get_solver(SOLVER).estimate_seconds(spec)
        root = tracer.start_trace("request", 0.0, request_id=0, lane="solve")
        batch = tracer.start_span("batch", root, 0.0)
        attempt = tracer.start_span(
            f"solver:{SOLVER}", batch, 0.0,
            solver=SOLVER, d=spec.d, n=spec.n, nrhs=spec.nrhs,
            problem=spec.problem, kind=spec.kind, regularization=0.0,
        )
        attempt.finish(analytic * 0.5)
        batch.finish(analytic * 0.5)
        tracer.end_trace(root, analytic * 0.5)
        return tracer, spec

    def test_ingest_consumes_solver_spans(self):
        tracer, spec = self._run_traced_solve()
        est = CalibratedEstimator(min_samples=1)
        assert est.ingest(tracer.traces()[0]) == 1
        assert est.factor(SOLVER, spec) == pytest.approx(0.5, rel=1e-6)

    def test_failed_attempts_skipped(self):
        tracer = Tracer()
        root = tracer.start_trace("request", 0.0)
        attempt = tracer.start_span(
            f"solver:{SOLVER}", root, 0.0,
            solver=SOLVER, d=2048, n=16, nrhs=1,
            problem="least_squares", kind="multisketch",
        )
        attempt.finish(1.0, status="error")
        tracer.end_trace(root, 1.0)
        est = CalibratedEstimator()
        assert est.ingest(tracer.traces()[0]) == 0

    def test_ingest_tracer_cursor_is_incremental(self):
        tracer, spec = self._run_traced_solve()
        est = CalibratedEstimator(min_samples=1)
        assert est.ingest_tracer(tracer) == 1
        assert est.ingest_tracer(tracer) == 0  # nothing new

    def test_server_feeds_estimator_even_with_tracing_off(self, rng):
        from repro.serving.server import ServerConfig, SketchServer

        server = SketchServer(ServerConfig(shards=1, tracing=False))
        a = rng.standard_normal((1024, 16))
        server.solve(a, rng.standard_normal(1024))
        assert server.calibration is not None
        assert sum(s["samples"] for s in server.calibration.snapshot().values()) >= 1

    def test_calibration_off_mode_has_no_estimator(self, rng):
        from repro.serving.server import ServerConfig, SketchServer

        server = SketchServer(ServerConfig(shards=1, calibration="off"))
        a = rng.standard_normal((1024, 16))
        server.solve(a, rng.standard_normal(1024))
        assert server.calibration is None
