"""SLOEngine golden scenarios: multi-window burn-rate alerting over the registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOConfig, SLOEngine, default_serving_slos


def availability_slo(**overrides) -> SLOConfig:
    kw = dict(
        name="availability",
        kind="availability",
        objective=0.99,
        fast_window=2,
        slow_window=8,
        burn_threshold=10.0,
    )
    kw.update(overrides)
    return SLOConfig(**kw)


def serve(registry: MetricsRegistry, good: int, bad: int = 0) -> None:
    """Emit one evaluation interval's worth of traffic into the counters."""
    registry.counter("serving_requests_total").inc(good + bad)
    if bad:
        registry.counter("serving_failed_requests_total").inc(bad)


class TestConfigValidation:
    def test_kind_checked(self):
        with pytest.raises(ValueError):
            SLOConfig(name="x", kind="uptime", objective=0.99)

    def test_objective_bounds(self):
        for bad in (0.0, 1.0, -1.0):
            with pytest.raises(ValueError):
                SLOConfig(name="x", kind="availability", objective=bad)

    def test_latency_needs_lane_and_threshold(self):
        with pytest.raises(ValueError):
            SLOConfig(name="x", kind="latency", objective=0.95, threshold=1.0)
        with pytest.raises(ValueError):
            SLOConfig(name="x", kind="latency", objective=0.95, lane="solve")

    def test_window_ordering(self):
        with pytest.raises(ValueError):
            SLOConfig(
                name="x", kind="availability", objective=0.99,
                fast_window=8, slow_window=2,
            )

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            SLOEngine(registry, [availability_slo(), availability_slo()])

    def test_error_budget(self):
        assert availability_slo().error_budget == pytest.approx(0.01)

    def test_default_set_covers_the_taxonomy(self):
        kinds = {s.kind for s in default_serving_slos()}
        assert kinds == {"availability", "latency", "shed_rate", "staleness"}


class TestBurnRateGolden:
    """The canonical incident: healthy -> outage -> recovery."""

    def _engine(self):
        registry = MetricsRegistry()
        engine = SLOEngine(registry, [availability_slo()])
        # Healthy warm-up fills the slow window with good intervals.
        for _ in range(8):
            serve(registry, good=100)
            assert engine.evaluate() == []
        return registry, engine

    def test_fast_burn_fires_before_slow_burn(self):
        registry, engine = self._engine()
        # First bad interval: the fast window (2 intervals) burns far over
        # threshold but the slow window (8 intervals) has not yet -- the
        # multi-window rule holds fire.
        serve(registry, good=50, bad=50)
        assert engine.evaluate() == []
        status = {s.name: s for s in engine.status()}["availability"]
        assert status.fast_burn > 10.0
        assert status.slow_burn < 10.0
        assert not status.alerting
        # Second bad interval pushes the slow window over too: page.
        serve(registry, good=50, bad=50)
        events = engine.evaluate()
        assert [e["state"] for e in events] == ["firing"]
        assert events[0]["slo"] == "availability"
        assert engine.firing() == ["availability"]

    def test_alert_clears_on_recovery(self):
        registry, engine = self._engine()
        for _ in range(2):
            serve(registry, good=50, bad=50)
            engine.evaluate()
        assert engine.firing() == ["availability"]
        # Recovery: two clean intervals empty the fast window; the alert
        # clears even though the slow window is still digesting the outage.
        serve(registry, good=100)
        engine.evaluate()
        serve(registry, good=100)
        events = engine.evaluate()
        assert [e["state"] for e in events] == ["resolved"]
        assert engine.firing() == []
        status = {s.name: s for s in engine.status()}["availability"]
        assert status.slow_burn > 10.0  # outage still visible in the long window

    def test_gauges_exported(self):
        registry, engine = self._engine()
        serve(registry, good=50, bad=50)
        engine.evaluate()
        assert registry.gauge("slo_burn_rate_fast", slo="availability").value > 10.0
        assert registry.gauge("slo_alert_active", slo="availability").value == 0.0
        serve(registry, good=50, bad=50)
        engine.evaluate()
        assert registry.gauge("slo_alert_active", slo="availability").value == 1.0
        transitions = registry.get(
            "slo_alert_transitions_total", slo="availability", state="firing"
        )
        assert transitions is not None and transitions.value == 1.0

    def test_alert_history_retained(self):
        registry, engine = self._engine()
        for _ in range(2):
            serve(registry, good=0, bad=100)
            engine.evaluate()
        serve(registry, good=100)
        engine.evaluate()
        serve(registry, good=100)
        engine.evaluate()
        states = [e["state"] for e in engine.alerts]
        assert states == ["firing", "resolved"]


class TestLatencySLO:
    def test_latency_breach_fires(self):
        registry = MetricsRegistry()
        slo = SLOConfig(
            name="latency_p95_solve", kind="latency", objective=0.90,
            threshold=1e-3, lane="solve", fast_window=4, slow_window=16,
            burn_threshold=2.0,
        )
        engine = SLOEngine(registry, [slo])
        hist = registry.histogram("runtime_lane_latency_seconds", lane="solve")
        for _ in range(16):
            hist.observe(1e-4)  # comfortably under threshold
        assert engine.evaluate() == []
        for _ in range(16):
            hist.observe(5e-3)  # every recent sample over threshold
        events = engine.evaluate()
        assert [e["state"] for e in events] == ["firing"]

    def test_no_samples_means_no_alert(self):
        registry = MetricsRegistry()
        slo = SLOConfig(
            name="stale", kind="staleness", objective=0.95, threshold=100.0,
        )
        engine = SLOEngine(registry, [slo])
        assert engine.evaluate() == []
        status = engine.status()[0]
        assert status.samples == 0 and not status.alerting


class TestShedRateSLO:
    def test_shed_burst_fires_and_clears(self):
        registry = MetricsRegistry()
        slo = SLOConfig(
            name="shed_rate", kind="shed_rate", objective=0.90,
            fast_window=2, slow_window=4, burn_threshold=2.0,
        )
        engine = SLOEngine(registry, [slo])
        for _ in range(4):
            registry.counter("runtime_requests_admitted_total").inc(100)
            engine.evaluate()
        for _ in range(2):
            registry.counter("runtime_requests_shed_total").inc(100)
            registry.counter("runtime_requests_admitted_total").inc(10)
            engine.evaluate()
        assert engine.firing() == ["shed_rate"]
        for _ in range(2):
            registry.counter("runtime_requests_admitted_total").inc(100)
            engine.evaluate()
        assert engine.firing() == []


class TestReport:
    def test_report_shape(self):
        registry = MetricsRegistry()
        engine = SLOEngine(registry, default_serving_slos())
        serve(registry, good=10)
        engine.evaluate()
        report = engine.report()
        assert report["evaluations"] == 1
        assert {row["name"] for row in report["slos"]} == {
            s.name for s in default_serving_slos()
        }
        assert report["firing"] == []
        assert report["alert_events"] == []
