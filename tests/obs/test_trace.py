"""Unit tests for the span/tracer layer (repro.obs.trace)."""

from __future__ import annotations

import pytest

from repro.obs.trace import NULL_SPAN, Span, Tracer


def test_span_tree_nesting_and_completion():
    tracer = Tracer()
    root = tracer.start_trace("request", 1.0, request_id=7, lane="solve")
    queue = tracer.start_span("queue", root, 1.0)
    queue.finish(2.0)
    solve = tracer.start_span("solve", root, 2.0, solver="qr")
    solve.finish(5.0)
    tracer.end_trace(root, 5.5)
    assert root.is_complete()
    assert root.end == 5.5
    assert [s.name for s in root.walk()] == ["request", "queue", "solve"]
    assert root.find("solve") is solve
    assert root.find_all("queue") == [queue]
    assert solve.parent_id == root.span_id
    assert solve.trace_id == root.trace_id


def test_child_start_clamped_to_parent():
    tracer = Tracer()
    root = tracer.start_trace("request", 10.0)
    child = tracer.start_span("early", root, 3.0)  # before the parent started
    assert child.start == 10.0


def test_finish_extends_over_children_and_clamps():
    tracer = Tracer()
    root = tracer.start_trace("request", 0.0)
    child = tracer.start_span("long", root, 1.0)
    child.finish(9.0)
    tracer.end_trace(root, 4.0)  # earlier than the child's end
    assert root.end == 9.0
    assert root.is_complete()
    # An end before the start clamps to a zero-duration span, never negative.
    span = Span("s", "t", "s1", None, 5.0)
    span.finish(2.0)
    assert span.end == 5.0
    assert span.duration == 0.0


def test_event_is_zero_duration_and_finished():
    tracer = Tracer()
    root = tracer.start_trace("request", 0.0)
    ev = tracer.event("drift", root, 3.0, kind="residual_energy")
    assert ev.start == ev.end == 3.0
    assert ev.duration == 0.0
    assert ev.attributes["kind"] == "residual_energy"


def test_status_propagation():
    tracer = Tracer()
    root = tracer.start_trace("request", 0.0)
    tracer.event("shed", root, 1.0, status="shed", reason="deadline")
    tracer.end_trace(root, 1.0, status="shed")
    assert root.status == "shed"
    assert root.find("shed").status == "shed"


def test_completed_retention_is_bounded_but_counters_are_not():
    tracer = Tracer(max_traces=4)
    for i in range(10):
        root = tracer.start_trace("request", float(i))
        tracer.end_trace(root, float(i) + 0.5)
    traces = tracer.traces()
    assert len(traces) == 4  # oldest evicted
    assert [t.start for t in traces] == [6.0, 7.0, 8.0, 9.0]
    assert tracer.traces_started == 10
    assert tracer.traces_completed == 10
    assert tracer.active_count() == 0


def test_find_trace_covers_active_and_completed():
    tracer = Tracer()
    active = tracer.start_trace("request", 0.0)
    done = tracer.start_trace("request", 1.0)
    tracer.end_trace(done, 2.0)
    assert tracer.find_trace(active.trace_id) is active
    assert tracer.find_trace(done.trace_id) is done
    assert tracer.find_trace("t_missing") is None


def test_disabled_tracer_is_inert():
    tracer = Tracer(enabled=False)
    root = tracer.start_trace("request", 0.0, lane="solve")
    assert root is NULL_SPAN
    child = tracer.start_span("solve", root, 1.0)
    assert child is NULL_SPAN
    child.set(solver="qr").finish(2.0, status="error")  # all swallowed
    tracer.event("x", root, 1.0)
    tracer.end_trace(root, 3.0)
    assert tracer.traces() == []
    assert tracer.traces_started == 0
    assert not NULL_SPAN.is_complete()
    assert NULL_SPAN.attributes == {}


def test_clear_keeps_counters():
    tracer = Tracer()
    tracer.end_trace(tracer.start_trace("request", 0.0), 1.0)
    tracer.clear()
    assert tracer.traces() == []
    assert tracer.traces_completed == 1


def test_as_dict_round_trip():
    tracer = Tracer()
    root = tracer.start_trace("request", 0.0, lane="ridge")
    tracer.start_span("solve", root, 0.5, solver="qr").finish(1.0)
    tracer.end_trace(root, 1.5)
    d = root.as_dict()
    assert d["name"] == "request"
    assert d["attributes"] == {"lane": "ridge"}
    assert d["duration_seconds"] == pytest.approx(1.5)
    assert d["children"][0]["name"] == "solve"
    assert d["children"][0]["parent_id"] == root.span_id


def test_tracer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        Tracer(max_traces=0)
