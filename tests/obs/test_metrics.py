"""Unit tests for the bounded metrics primitives (repro.obs.metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, P2Quantile
from repro.serving.telemetry import ServingTelemetry


# ---------------------------------------------------------------------------
# counters and gauges
# ---------------------------------------------------------------------------
def test_counter_monotone():
    c = Counter("requests_total", {"lane": "solve"})
    c.inc()
    c.inc(2.5)
    assert c.value == pytest.approx(3.5)
    with pytest.raises(ValueError):
        c.inc(-1.0)
    c.reset()
    assert c.value == 0.0


def test_gauge_moves_both_ways():
    g = Gauge("queue_depth", {})
    g.set(7)
    g.dec(3)
    g.inc()
    assert g.value == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# P² streaming quantiles
# ---------------------------------------------------------------------------
def test_p2_exact_below_five_samples():
    sketch = P2Quantile(0.5)
    assert sketch.value is None
    for x in (5.0, 1.0, 3.0):
        sketch.observe(x)
    assert sketch.value == pytest.approx(np.percentile([5.0, 1.0, 3.0], 50.0))


@pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
@pytest.mark.parametrize("dist", ["uniform", "normal", "lognormal"])
def test_p2_rank_error_within_one_percent(p, dist):
    """On 10k samples the P² estimate's rank is within 1% of the target.

    Rank error (the fraction of samples below the estimate vs the target
    quantile) is the right metric: it is distribution-free, unlike relative
    value error which blows up where the density is flat.
    """
    rng = np.random.default_rng(1234)
    samples = {
        "uniform": rng.uniform(0.0, 1.0, 10_000),
        "normal": rng.standard_normal(10_000),
        "lognormal": rng.lognormal(0.0, 1.0, 10_000),
    }[dist]
    sketch = P2Quantile(p)
    for x in samples:
        sketch.observe(x)
    estimate = sketch.value
    rank = float(np.mean(samples <= estimate))
    assert abs(rank - p) <= 0.01


def test_p2_invalid_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


# ---------------------------------------------------------------------------
# histogram: exactness, ring bounds, bulk ingest
# ---------------------------------------------------------------------------
def test_histogram_exact_below_capacity():
    hist = Histogram(capacity=256)
    rng = np.random.default_rng(0)
    xs = rng.lognormal(0.0, 1.0, 100)
    for x in xs:
        hist.observe(x)
    for q in (10.0, 50.0, 95.0, 99.0):
        assert hist.percentile(q) == pytest.approx(np.percentile(xs, q))
    assert hist.count == 100
    assert len(hist) == 100
    assert hist.mean == pytest.approx(xs.mean())
    assert hist.min == pytest.approx(xs.min())
    assert hist.max == pytest.approx(xs.max())


def test_histogram_tracked_quantiles_survive_ring_wrap():
    hist = Histogram(capacity=128, quantiles=(50.0, 95.0, 99.0))
    rng = np.random.default_rng(7)
    xs = rng.lognormal(0.0, 1.0, 10_000)
    for x in xs:
        hist.observe(x)
    assert len(hist) == 128  # ring stays bounded
    assert hist.count == 10_000  # exact total survives
    for q in (50.0, 95.0, 99.0):
        estimate = hist.percentile(q)
        rank = float(np.mean(xs <= estimate))
        assert abs(rank - q / 100.0) <= 0.01


def test_histogram_observe_many_matches_observe():
    rng = np.random.default_rng(3)
    xs = rng.standard_normal(500)
    one = Histogram(capacity=256)
    bulk = Histogram(capacity=256)
    for x in xs:
        one.observe(x)
    bulk.observe_many(xs)
    np.testing.assert_allclose(bulk.values(), one.values())
    assert bulk.count == one.count == 500
    assert bulk.sum == pytest.approx(one.sum)
    assert bulk.min == pytest.approx(one.min)
    assert bulk.max == pytest.approx(one.max)


def test_histogram_observe_many_oversized_batch_keeps_tail():
    hist = Histogram(capacity=64)
    xs = np.arange(1000, dtype=np.float64)
    hist.observe_many(xs)
    np.testing.assert_allclose(hist.values(), xs[-64:])
    assert hist.count == 1000


def test_histogram_million_records_stay_bounded():
    """Satellite regression: 1M records leave a fixed footprint.

    ``recent_p95`` semantics are unchanged: the ring always holds the tail
    in arrival order, so the last-window percentile is exact forever.
    """
    telemetry = ServingTelemetry(sample_capacity=4096)
    rng = np.random.default_rng(11)
    last_chunk = None
    for _ in range(100):
        chunk = rng.lognormal(0.0, 0.5, 10_000)
        telemetry.record_requests(chunk)
        last_chunk = chunk
    hist = telemetry.registry.get("serving_request_latency_seconds")
    assert hist.count == 1_000_000
    assert len(hist) == 4096  # retained samples bounded by the ring
    assert hist._ring.nbytes == 4096 * 8  # the actual allocation is fixed
    assert telemetry.requests_served == 1_000_000
    # recent_p95 window semantics preserved: exact over the last 64 samples.
    expected = float(np.percentile(last_chunk[-64:], 95.0))
    assert telemetry.recent_p95(window=64) == pytest.approx(expected)


def test_histogram_recent_percentile_window():
    hist = Histogram(capacity=128)
    xs = np.arange(200, dtype=np.float64)
    for x in xs:
        hist.observe(x)
    assert hist.recent_percentile(50.0, 10) == pytest.approx(
        np.percentile(xs[-10:], 50.0)
    )


def test_histogram_reset():
    hist = Histogram(capacity=16)
    hist.observe_many(np.arange(100.0))
    hist.reset()
    assert hist.count == 0
    assert hist.percentile(50.0) is None
    assert hist.mean == 0.0


def test_histogram_reset_clears_ring():
    """reset() restarts the whole stream: no pre-reset sample may survive.

    Fills the ring with large values, resets, then observes a small batch --
    every view (values, percentiles, min/max, recent window) must reflect
    only post-reset data, exactly like a freshly constructed histogram.
    """
    hist = Histogram(capacity=16)
    hist.observe_many(np.full(100, 1e9))
    hist.reset()
    assert np.all(hist.values() == np.zeros(0))
    fresh = np.arange(1.0, 6.0)
    hist.observe_many(fresh)
    np.testing.assert_array_equal(hist.values(), fresh)
    assert hist.max == pytest.approx(5.0)
    assert hist.min == pytest.approx(1.0)
    assert hist.percentile(100.0) == pytest.approx(5.0)
    assert hist.recent_percentile(100.0, 16) == pytest.approx(5.0)
    # The buffer itself holds no stale pre-reset samples past the cursor.
    assert np.all(hist._ring[fresh.size:] == 0.0)


def test_histogram_rejects_bad_capacity():
    with pytest.raises(ValueError):
        Histogram(capacity=0)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_registry_get_or_create_identity():
    reg = MetricsRegistry()
    a = reg.counter("requests_total", lane="solve")
    b = reg.counter("requests_total", lane="solve")
    other = reg.counter("requests_total", lane="ridge")
    assert a is b
    assert a is not other
    assert reg.get("requests_total", lane="solve") is a
    assert reg.get("requests_total", lane="missing") is None
    assert len(reg.series("requests_total")) == 2
    assert reg.label_values("requests_total", "lane") == ["solve", "ridge"]


def test_registry_type_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("depth")
    with pytest.raises(ValueError):
        reg.gauge("depth")
    with pytest.raises(ValueError):
        reg.histogram("depth")


def test_registry_total_and_families():
    reg = MetricsRegistry()
    reg.counter("shed_total", lane="solve").inc(3)
    reg.counter("shed_total", lane="ridge").inc(2)
    reg.gauge("active").set(4)
    reg.histogram("latency").observe(1.0)
    assert reg.total("shed_total") == pytest.approx(5.0)
    assert reg.total("unknown") == 0.0
    families = reg.families()
    assert [name for name, _, _ in families] == sorted(reg.names())
    kinds = {name: kind for name, kind, _ in families}
    assert kinds == {"shed_total": "counter", "active": "gauge", "latency": "histogram"}


def test_registry_labelled_values_breakdown():
    reg = MetricsRegistry()
    reg.counter("evicted_total", reason="ttl").inc(3)
    reg.counter("evicted_total", reason="capacity").inc(1)
    reg.counter("evicted_total", reason="ttl", shard="1").inc(2)  # summed in
    reg.counter("evicted_total")  # no labels: skipped
    assert reg.labelled_values("evicted_total", "reason") == {
        "ttl": 5.0, "capacity": 1.0,
    }
    assert reg.labelled_values("evicted_total", "shard") == {"1": 2.0}
    assert reg.labelled_values("unknown", "reason") == {}


def test_registry_reset_keeps_registrations():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", lane="solve")
    h = reg.histogram("latency")
    c.inc(9)
    h.observe(2.0)
    reg.reset()
    assert reg.get("requests_total", lane="solve") is c  # series survives
    assert c.value == 0.0
    assert h.count == 0
