"""Unit tests for the exporters (repro.obs.export)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.export import (
    critical_path,
    registry_to_dict,
    render_critical_path,
    render_waterfall,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", lane="solve").inc(5)
    reg.counter("requests_total", lane="ridge").inc(2)
    reg.gauge("active_shards").set(3)
    hist = reg.histogram("latency_seconds", lane="solve")
    hist.observe_many(np.linspace(0.001, 0.1, 100))
    return reg


def test_prometheus_exposition_format():
    text = to_prometheus(_populated_registry())
    assert "# TYPE repro_requests_total counter" in text
    assert 'repro_requests_total{lane="solve"} 5' in text
    assert 'repro_requests_total{lane="ridge"} 2' in text
    assert "# TYPE repro_active_shards gauge" in text
    assert "repro_active_shards 3" in text
    # Histograms render as summaries: tracked quantiles + _sum/_count.
    assert "# TYPE repro_latency_seconds summary" in text
    assert 'repro_latency_seconds{lane="solve",quantile="0.95"}' in text
    assert 'repro_latency_seconds_count{lane="solve"} 100' in text
    assert text.endswith("\n")


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("events_total", kind='he said "hi"\nback\\slash').inc()
    text = to_prometheus(reg)
    assert r'kind="he said \"hi\"\nback\\slash"' in text


def test_prometheus_custom_prefix():
    text = to_prometheus(_populated_registry(), prefix="x_")
    assert "# TYPE x_requests_total counter" in text
    assert "repro_" not in text


def test_json_snapshot_round_trip():
    reg = _populated_registry()
    payload = json.loads(to_json(reg))
    assert payload == registry_to_dict(reg)
    assert payload["requests_total"]["type"] == "counter"
    values = {
        tuple(sorted(row["labels"].items())): row["value"]
        for row in payload["requests_total"]["series"]
    }
    assert values[(("lane", "solve"),)] == 5
    hist_row = payload["latency_seconds"]["series"][0]
    assert hist_row["count"] == 100
    assert hist_row["quantiles"]["0.95"] == pytest.approx(
        np.percentile(np.linspace(0.001, 0.1, 100), 95.0)
    )


def _sample_trace():
    tracer = Tracer()
    root = tracer.start_trace("request", 0.0, lane="solve")
    queue = tracer.start_span("queue", root, 0.0)
    queue.finish(1.0)
    batch = tracer.start_span("batch", root, 1.0, shard=0)
    solve = tracer.start_span("solve", batch, 1.0, solver="qr")
    solve.finish(4.0)
    batch.finish(4.0)
    respond = tracer.start_span("respond", root, 4.0)
    respond.finish(5.0)
    tracer.end_trace(root, 5.0)
    return root


def test_render_waterfall_layout():
    out = render_waterfall(_sample_trace(), width=20)
    lines = out.splitlines()
    assert lines[0].startswith("trace ")
    assert "status=ok" in lines[0]
    for name in ("queue", "batch", "solve", "respond"):
        assert any(name in line for line in lines[1:])
    # Bars are clamped to the requested width.
    for line in lines[1:]:
        bar = line.split("|")[1]
        assert len(bar) == 20
        assert set(bar) <= {".", "#"}
    # The solve span is nested one level deeper than its batch parent.
    batch_line = next(l for l in lines[1:] if l.lstrip().startswith("batch"))
    solve_line = next(l for l in lines[1:] if l.lstrip().startswith("solve"))
    assert len(solve_line) - len(solve_line.lstrip()) > len(batch_line) - len(
        batch_line.lstrip()
    )


def test_critical_path_follows_latest_child():
    root = _sample_trace()
    path = critical_path(root)
    assert [s.name for s in path] == ["request", "respond"]
    rendered = render_critical_path(root)
    assert "critical path" in rendered
    assert "respond" in rendered
    assert "100.0%" in rendered  # the root covers the whole trace


def test_render_waterfall_zero_duration_trace():
    tracer = Tracer()
    root = tracer.start_trace("request", 2.0)
    tracer.event("shed", root, 2.0, status="shed", reason="deadline")
    tracer.end_trace(root, 2.0, status="shed")
    out = render_waterfall(root)
    assert "status=shed" in out
    assert "!shed" in out  # non-ok spans are flagged on their bar line
