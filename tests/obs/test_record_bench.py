"""Unit tests for the perf-trajectory schema and recorder CLI."""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import sys

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    load_bench,
    validate_bench,
    write_bench,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _valid_payload() -> dict:
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "pr": 6,
        "config": {"d": 2048, "n": 16, "seed": 0},
        "throughput": {
            "serving_requests_per_second": 3e5,
            "concurrent_requests_per_second": 1.6e5,
            "speedup_vs_naive": 16.0,
            "concurrent_speedup_vs_sync": 1.1,
        },
        "lanes": {
            lane: {"p50_seconds": 1e-4, "p95_seconds": 2e-4, "p99_seconds": 3e-4}
            for lane in ("solve", "ridge", "stream")
        },
        "residuals": {
            "worst_sync": 0.008,
            "worst_concurrent": 0.008,
            "concurrent_over_sync_ratio": 1.0,
            "ridge_residual_ratio": 1.0,
        },
        "counters": {
            "requests_shed": 9.0,
            "queue_full_rejects": 8.0,
            "deadline_violations": 0.0,
            "fallback_batches": 0.0,
            "drift_events": 1.0,
        },
        "streaming": {
            "ingest_rows_per_second": 2e7,
            "resolves": 6.0,
            "final_residual": 0.025,
        },
    }


def test_valid_payload_passes():
    assert validate_bench(_valid_payload()) == []


def test_not_an_object():
    assert validate_bench([1, 2]) == ["payload must be a JSON object, got list"]


def test_wrong_schema_version_and_pr_type():
    payload = _valid_payload()
    payload["schema_version"] = 99
    payload["pr"] = True  # bools are not PR numbers
    errors = validate_bench(payload)
    assert any("schema_version" in e for e in errors)
    assert any("pr must be an int" in e for e in errors)


def test_missing_section_and_field():
    payload = _valid_payload()
    del payload["streaming"]
    del payload["throughput"]["speedup_vs_naive"]
    errors = validate_bench(payload)
    assert "missing section 'streaming'" in errors
    assert "throughput.speedup_vs_naive missing" in errors


def test_non_finite_numbers_rejected():
    payload = _valid_payload()
    payload["residuals"]["worst_sync"] = math.nan
    payload["counters"]["requests_shed"] = "9"
    errors = validate_bench(payload)
    assert any("residuals.worst_sync" in e for e in errors)
    assert any("counters.requests_shed" in e for e in errors)


def test_lanes_must_be_non_empty_and_non_negative():
    payload = _valid_payload()
    payload["lanes"] = {}
    assert any("lanes" in e for e in validate_bench(payload))
    payload = _valid_payload()
    payload["lanes"]["solve"]["p95_seconds"] = -1.0
    assert any("lanes.solve.p95_seconds" in e for e in validate_bench(payload))


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "BENCH_test.json"
    payload = _valid_payload()
    write_bench(payload, str(path))
    assert load_bench(str(path)) == payload
    assert path.read_text().endswith("\n")


def test_write_rejects_invalid(tmp_path):
    payload = _valid_payload()
    payload["pr"] = "six"
    with pytest.raises(ValueError, match="invalid bench payload"):
        write_bench(payload, str(tmp_path / "bad.json"))


# ---------------------------------------------------------------------------
# CLI --validate path (the CI failure mode)
# ---------------------------------------------------------------------------
def _run_validate(path: pathlib.Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "record_bench.py"),
         "--validate", str(path)],
        capture_output=True,
        text=True,
    )


def test_cli_validate_accepts_valid_record(tmp_path):
    path = tmp_path / "BENCH_6.json"
    write_bench(_valid_payload(), str(path))
    proc = _run_validate(path)
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_cli_validate_rejects_missing_and_invalid(tmp_path):
    proc = _run_validate(tmp_path / "absent.json")
    assert proc.returncode == 1
    assert "does not exist" in proc.stderr

    bad = tmp_path / "bad.json"
    payload = _valid_payload()
    del payload["counters"]
    bad.write_text(json.dumps(payload))
    proc = _run_validate(bad)
    assert proc.returncode == 1
    assert "missing section 'counters'" in proc.stderr


def test_repo_ships_a_valid_bench_record():
    """The committed BENCH_6.json must satisfy its own schema."""
    path = REPO_ROOT / "BENCH_6.json"
    assert path.exists(), "BENCH_6.json missing from the repository root"
    assert validate_bench(load_bench(str(path))) == []
