"""Unit tests for the concurrent serving runtime.

The acceptance-level behaviour (2x throughput, shed-don't-violate, elastic
up-then-down) lives in ``benchmarks/test_concurrent_runtime.py``; these
tests pin the mechanisms: admission bounds, lane round-robin, priorities,
pause/resume, future semantics, per-session ordering, the elastic policy's
decision table and the scheduler's reservation accounting.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.gpu.pool import ExecutorPool
from repro.serving import (
    AsyncSketchServer,
    DeadlineExceededError,
    ElasticShardPolicy,
    MicroBatcher,
    QueueFullError,
    RuntimeConfig,
    ShardScheduler,
    SolveRequest,
    normalize_lane,
)
from repro.serving.requests import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL


@pytest.fixture
def problem():
    rng = np.random.default_rng(42)
    a = rng.standard_normal((512, 8))
    x_true = np.ones(8)
    return a, a @ x_true + 0.01 * rng.standard_normal(512)


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------
def test_runtime_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(workers=0)
    with pytest.raises(ValueError):
        RuntimeConfig(queue_depth=0)
    with pytest.raises(ValueError):
        RuntimeConfig(lane_weights={"solve": 4, "ridge": 2, "stream": 0})
    with pytest.raises(ValueError):
        RuntimeConfig(lane_weights={"solve": 1, "ridge": 1, "stream": 1, "bogus": 1})


def test_elastic_policy_validation():
    with pytest.raises(ValueError):
        ElasticShardPolicy(min_shards=0)
    with pytest.raises(ValueError):
        ElasticShardPolicy(min_shards=4, max_shards=2)
    with pytest.raises(ValueError):
        ElasticShardPolicy(queue_high=1.0, queue_low=2.0)


def test_normalize_lane():
    assert normalize_lane("lstsq") == "solve"
    assert normalize_lane("ingest") == "stream"
    assert normalize_lane("Ridge") == "ridge"
    with pytest.raises(ValueError):
        normalize_lane("bogus")


def test_elastic_pool_provisioned_at_max():
    runtime = AsyncSketchServer(
        shards=2, seed=0, elastic=ElasticShardPolicy(min_shards=1, max_shards=6)
    )
    try:
        assert runtime.pool.size == 6
        assert runtime.active_shards == 2  # starts at the configured shards
    finally:
        runtime.stop()


# ---------------------------------------------------------------------------
# elastic decision table
# ---------------------------------------------------------------------------
def test_elastic_decide_scales_up_on_queue_depth():
    policy = ElasticShardPolicy(min_shards=1, max_shards=8, queue_high=4.0, queue_low=1.0)
    target, reason = policy.decide(2, queue_depth=20)
    assert target == 4 and "queue depth" in reason
    # Doubling clamps at the maximum.
    target, _ = policy.decide(6, queue_depth=60)
    assert target == 8


def test_elastic_decide_scales_up_on_latency_breach():
    policy = ElasticShardPolicy(
        min_shards=1, max_shards=4, queue_high=100.0, p95_budget=1e-3
    )
    target, reason = policy.decide(2, queue_depth=1, p95_seconds=5e-3)
    assert target == 4 and "p95" in reason


def test_elastic_decide_scales_down_one_step():
    policy = ElasticShardPolicy(min_shards=1, max_shards=8, queue_high=4.0, queue_low=1.0)
    assert policy.decide(4, queue_depth=0) == (3, "queue depth 0 under 1/shard")
    # Holds at the floor.
    assert policy.decide(1, queue_depth=0)[0] == 1
    # Holds in the hysteresis band.
    assert policy.decide(4, queue_depth=8)[0] == 4


def test_elastic_decide_holds_down_while_latency_breached():
    policy = ElasticShardPolicy(min_shards=1, max_shards=8, p95_budget=1e-3)
    target, _ = policy.decide(4, queue_depth=0, p95_seconds=5e-3)
    assert target == 8  # latency breach forces up even at zero queue


def test_elastic_proactive_requires_drain_budget():
    with pytest.raises(ValueError):
        ElasticShardPolicy(proactive=True)
    with pytest.raises(ValueError):
        ElasticShardPolicy(proactive=True, drain_budget=0.0)


def test_elastic_proactive_scales_up_on_predicted_drain():
    policy = ElasticShardPolicy(
        min_shards=1, max_shards=8, queue_high=100.0, proactive=True,
        drain_budget=1e-3,
    )
    # Queue depth alone is nowhere near the reactive trigger; the predicted
    # drain time is what forces the scale-up.
    target, reason = policy.decide(2, queue_depth=4, predicted_drain_seconds=5e-3)
    assert target == 4 and "predicted drain" in reason


def test_elastic_proactive_blocks_scale_down():
    policy = ElasticShardPolicy(
        min_shards=1, max_shards=8, queue_high=4.0, queue_low=1.0,
        proactive=True, drain_budget=1e-3,
    )
    # Would scale down reactively (empty queue) but the drain projection
    # says the backlog will not clear in budget: hold.
    target, _ = policy.decide(4, queue_depth=0, predicted_drain_seconds=5e-3)
    assert target == 8  # breach forces up, not merely holds
    # With a healthy projection the normal scale-down resumes.
    target, _ = policy.decide(4, queue_depth=0, predicted_drain_seconds=1e-5)
    assert target == 3


def test_elastic_proactive_degrades_to_reactive_without_prediction():
    policy = ElasticShardPolicy(
        min_shards=1, max_shards=8, queue_high=4.0, queue_low=1.0,
        proactive=True, drain_budget=1e-3,
    )
    # No EWMA yet (prediction None): behaves exactly like the reactive table.
    assert policy.decide(2, queue_depth=20, predicted_drain_seconds=None)[0] == 4
    assert policy.decide(4, queue_depth=0, predicted_drain_seconds=None)[0] == 3


def test_runtime_exports_predicted_drain_gauge():
    rng = np.random.default_rng(11)
    runtime = AsyncSketchServer(
        shards=1, seed=0, workers=1, queue_depth=64,
        elastic=ElasticShardPolicy(
            min_shards=1, max_shards=4, proactive=True, drain_budget=10.0
        ),
    )
    try:
        futures = []
        for _ in range(6):
            a = rng.standard_normal((256, 12))
            futures.append(runtime.submit(a, rng.standard_normal(256)))
        runtime.drain()
        for f in futures:
            assert f.exception() is None
        gauge = runtime.server.metrics.get("runtime_predicted_drain_seconds")
        assert gauge is not None  # proactive mode published the projection
    finally:
        runtime.stop()


# ---------------------------------------------------------------------------
# scheduler: active set + reservations
# ---------------------------------------------------------------------------
def test_scheduler_places_only_on_active_shards():
    pool = ExecutorPool(4, numeric=False, seed=0)
    sched = ShardScheduler(pool, active_shards=2)
    assert sched.active_set() == (0, 1)
    for _ in range(8):
        assert sched.place() in (0, 1)
    # Affinity to a parked shard is still honoured (pinned state).
    assert sched.place(preferred=3) == 3


def test_scheduler_set_active_records_events():
    pool = ExecutorPool(4, numeric=False, seed=0)
    sched = ShardScheduler(pool, active_shards=1)
    assert sched.set_active(4, reason="spike", queue_depth=12)
    assert not sched.set_active(4)  # no-op change records nothing
    assert sched.set_active(2, reason="drained")
    events = sched.scale_events
    assert [e.direction for e in events] == ["up", "down"]
    assert events[0].queue_depth == 12
    assert sched.scale_transitions() == {"up": 1, "down": 1}
    with pytest.raises(ValueError):
        sched.set_active(0)
    with pytest.raises(ValueError):
        sched.set_active(5)


def test_scheduler_reservations_steer_placement():
    pool = ExecutorPool(2, numeric=False, seed=0)
    sched = ShardScheduler(pool)
    first = sched.place(reserve_seconds=1.0)
    # With the reservation booked, the other shard is now least loaded.
    second = sched.place()
    assert second != first
    sched.release(first, 1.0)
    assert sched.effective_loads() == pool.loads()
    # Releasing more than reserved clamps at zero.
    sched.release(first, 5.0)
    assert sched.min_effective_load() == pytest.approx(min(pool.loads()))


# ---------------------------------------------------------------------------
# batcher: incremental priority pops
# ---------------------------------------------------------------------------
def _request(rid, a, b, priority=PRIORITY_NORMAL):
    return SolveRequest(request_id=rid, a=a, b=b, priority=priority)


def test_pop_batch_priority_and_remainder(problem):
    a, b = problem
    rng = np.random.default_rng(0)
    a2 = rng.standard_normal(a.shape)
    batcher = MicroBatcher(max_batch=2)
    for i in range(3):
        batcher.add(_request(i, a, b, priority=PRIORITY_LOW))
    batcher.add(_request(3, a2, b, priority=PRIORITY_HIGH))
    # High priority pops first even though it arrived last.
    first = batcher.pop_batch()
    assert [r.request_id for r in first.requests] == [3]
    # Oversized groups split, leaving the remainder queued.
    second = batcher.pop_batch()
    assert [r.request_id for r in second.requests] == [0, 1]
    assert batcher.pending == 1
    third = batcher.pop_batch()
    assert [r.request_id for r in third.requests] == [2]
    assert batcher.pop_batch() is None


# ---------------------------------------------------------------------------
# admission + futures
# ---------------------------------------------------------------------------
def test_queue_bound_is_enforced(problem):
    a, b = problem
    runtime = AsyncSketchServer(shards=1, workers=1, queue_depth=3, seed=0)
    try:
        runtime.pause()
        futures = [runtime.submit(a, b) for _ in range(3)]
        with pytest.raises(QueueFullError) as exc_info:
            runtime.submit(a, b)
        assert exc_info.value.queue_depth == 3
        runtime.resume()
        for f in futures:
            assert f.result(timeout=30.0).relative_residual < 0.05
    finally:
        runtime.stop()


def test_future_semantics(problem):
    a, b = problem
    with AsyncSketchServer(shards=1, workers=1, seed=0) as runtime:
        future = runtime.submit(a, b)
        response = future.result(timeout=30.0)
        assert future.done() and not future.shed
        assert future.exception() is None
        assert response.request_id == future.request_id
        # result() is idempotent.
        assert future.result() is response


def test_shed_future_reports_typed_error(problem):
    a, b = problem
    runtime = AsyncSketchServer(shards=1, workers=1, seed=0)
    try:
        runtime.pause()
        future = runtime.submit(a, b, latency_budget=1e-15)
        runtime.resume()
        with pytest.raises(DeadlineExceededError) as exc_info:
            future.result(timeout=30.0)
        assert future.shed
        assert exc_info.value.projected_seconds > exc_info.value.budget_seconds
        assert runtime.telemetry.sheds_by_lane()["solve"] == 1
    finally:
        runtime.stop()


def test_stop_without_drain_sheds_backlog(problem):
    a, b = problem
    runtime = AsyncSketchServer(shards=1, workers=1, seed=0)
    runtime.pause()
    futures = [runtime.submit(a, b) for _ in range(4)]
    runtime.stop(drain=False)
    # The runtime stays paused until the backlog is shed, so nothing races
    # the workers: every admitted request gets the typed shutdown error.
    assert all(f.done() and f.shed for f in futures)
    assert runtime.telemetry.shed_counts().get("shutdown", 0) == 4
    with pytest.raises(RuntimeError):
        runtime.submit(a, b)


def test_dispatch_error_rejects_futures_not_workers(problem, monkeypatch):
    a, b = problem
    runtime = AsyncSketchServer(shards=1, workers=1, seed=0)
    try:
        boom = RuntimeError("injected planning failure")

        def exploding_plan(batch):
            raise boom

        monkeypatch.setattr(runtime.server, "_plan_batch", exploding_plan)
        future = runtime.submit(a, b)
        with pytest.raises(RuntimeError, match="injected planning failure"):
            future.result(timeout=30.0)
        # The worker survived the failed dispatch and still serves traffic.
        monkeypatch.undo()
        assert runtime.solve(a, b).relative_residual < 0.05
    finally:
        runtime.stop()


def test_invalid_submit_does_not_skew_admission_telemetry(problem):
    a, b = problem
    with AsyncSketchServer(shards=1, workers=1, seed=0) as runtime:
        with pytest.raises(ValueError):
            runtime.submit(a[:, 0], b)  # 1-D A rejected before admission
        with pytest.raises(ValueError):
            runtime.submit_ridge(a, b, -1.0)  # negative lambda likewise
        assert runtime.telemetry.requests_admitted == 0
        assert runtime.telemetry.queue_depth_max() == 0


def test_solve_convenience_roundtrip(problem):
    a, b = problem
    with AsyncSketchServer(shards=2, workers=2, seed=0) as runtime:
        response = runtime.solve(a, b)
        assert response.relative_residual < 0.05
        assert runtime.stats()["requests_served"] == 1.0


# ---------------------------------------------------------------------------
# lanes
# ---------------------------------------------------------------------------
def test_mixed_lanes_complete_and_record_latencies(problem):
    a, b = problem
    rng = np.random.default_rng(5)
    with AsyncSketchServer(shards=2, workers=3, seed=0) as runtime:
        solve_futures = [runtime.submit(a, b) for _ in range(6)]
        ridge_future = runtime.submit_ridge(a, b, 1e-3)
        sid = runtime.open_stream(4)
        ingest = [
            runtime.append_rows(sid, rng.standard_normal((32, 4)), rng.standard_normal(32))
            for _ in range(3)
        ]
        query = runtime.query_solution(sid)
        for f in solve_futures:
            f.result(timeout=30.0)
        assert ridge_future.result(timeout=30.0).problem == "ridge"
        assert sum(r.result(timeout=30.0).rows for r in ingest) == 96
        assert query.result(timeout=30.0).window_rows == 96
        runtime.drain()
        stats = runtime.close_stream(sid)
        assert stats["rows_ingested"] == 96.0
        telemetry = runtime.telemetry
        assert set(telemetry.lanes_seen()) == {"solve", "ridge", "stream"}
        for lane in ("solve", "ridge", "stream"):
            assert telemetry.lane_latency_summary(lane).count >= 1


def test_stream_session_ingest_order_is_preserved():
    # Decayed windows are order-sensitive: if the worker pool lost or
    # reordered one session's batches, the decay weights (and therefore the
    # queried solution) would differ from the synchronous reference.
    from repro.serving import SketchServer

    rng = np.random.default_rng(9)
    batches = [
        (rng.standard_normal((16, 4)), rng.standard_normal(16)) for _ in range(12)
    ]
    reference = SketchServer(shards=2, seed=0)
    ref_sid = reference.open_stream(4, mode="decay", seed=11)
    for rows, targets in batches:
        reference.append_rows(ref_sid, rows, targets)
    ref_x = reference.query_solution(ref_sid).x
    with AsyncSketchServer(shards=2, workers=4, seed=0) as runtime:
        sid = runtime.open_stream(4, mode="decay", seed=11)
        futures = [runtime.append_rows(sid, rows, targets) for rows, targets in batches]
        reports = [f.result(timeout=30.0) for f in futures]
        assert all(r.rows == 16 for r in reports)
        x = runtime.query_solution(sid).result(timeout=30.0).x
        runtime.drain()
        stats = runtime.close_stream(sid)
    assert stats["rows_ingested"] == 192.0
    np.testing.assert_allclose(x, ref_x, rtol=1e-10, atol=1e-12)


def test_stream_submit_unknown_session_raises():
    with AsyncSketchServer(shards=1, workers=1, seed=0) as runtime:
        with pytest.raises(KeyError):
            runtime.append_rows(12345, np.zeros((1, 4)), np.zeros(1))


def test_queue_depth_counts_all_lanes(problem):
    a, b = problem
    runtime = AsyncSketchServer(shards=1, workers=1, seed=0, queue_depth=16)
    try:
        sid = runtime.open_stream(8)
        runtime.pause()
        runtime.submit(a, b)
        runtime.submit_ridge(a, b, 1e-3)
        runtime.append_rows(sid, np.zeros((2, 8)), np.zeros(2))
        assert runtime.pending == 3
        runtime.resume()
        runtime.drain()
        assert runtime.pending == 0
        runtime.close_stream(sid)
    finally:
        runtime.stop()


# ---------------------------------------------------------------------------
# concurrency smoke: many submitters, one runtime
# ---------------------------------------------------------------------------
def test_concurrent_submitters_all_complete(problem):
    a, b = problem
    with AsyncSketchServer(shards=2, workers=4, seed=0, queue_depth=256) as runtime:
        results = []
        errors = []

        def submitter():
            try:
                futures = [runtime.submit(a, b) for _ in range(8)]
                results.extend(f.result(timeout=60.0) for f in futures)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90.0)
        assert not errors
        assert len(results) == 32
        assert len({r.request_id for r in results}) == 32
        assert all(r.relative_residual < 0.05 for r in results)
