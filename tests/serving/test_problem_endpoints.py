"""SketchServer problem-class endpoints: solve_ridge and approx_lowrank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems import RIDGE_SOLVERS, dense_ridge_reference, ridge_residuals
from repro.serving import SketchServer
from repro.workloads import decaying_spectrum_matrix, make_ridge_problem

D, N, RANK = 2048, 16, 4


@pytest.fixture
def server():
    return SketchServer(shards=2, policy="cheapest_accurate", seed=0)


@pytest.fixture
def ridge_problem():
    return make_ridge_problem(D, N, cond=1e4, lam_rel=1e-4, seed=2)


@pytest.fixture
def lowrank_problem():
    return decaying_spectrum_matrix(D, 32, rank=RANK, decay=0.4, seed=3)


class TestSolveRidgeEndpoint:
    def test_routes_to_a_ridge_solver_and_matches_reference(self, server, ridge_problem):
        p = ridge_problem
        resp = server.solve_ridge(p.a, p.b, p.lam)
        assert resp.problem == "ridge"
        assert resp.executed_solver in RIDGE_SOLVERS
        assert resp.extra["regularization"] == p.lam
        x_ref = dense_ridge_reference(p.a, p.b, p.lam)
        _, ref_rel, _ = ridge_residuals(p.a, p.b, x_ref, p.lam)
        assert resp.relative_residual <= 1.1 * ref_rel
        assert resp.extra["failed"] == 0.0
        assert resp.simulated_seconds > 0

    def test_attempted_chain_recorded(self, server, ridge_problem):
        p = ridge_problem
        resp = server.solve_ridge(p.a, p.b, p.lam)
        attempted = str(resp.extra["attempted"]).split("->")
        assert set(attempted) <= set(RIDGE_SOLVERS)
        assert attempted[-1] == resp.executed_solver

    def test_fixed_server_routes_ridge_adaptively(self, ridge_problem):
        p = ridge_problem
        server = SketchServer(shards=1, policy="fixed", seed=0)  # default solver is LS-class
        resp = server.solve_ridge(p.a, p.b, p.lam)
        assert resp.policy == "cheapest_accurate"
        assert resp.executed_solver in RIDGE_SOLVERS

    def test_explicit_solver_pins_fixed_routing(self, ridge_problem):
        p = ridge_problem
        server = SketchServer(shards=1, policy="fixed", seed=0)
        resp = server.solve_ridge(p.a, p.b, p.lam, solver="ridge_normal_equations")
        assert resp.policy == "fixed"
        assert resp.executed_solver == "ridge_normal_equations"

    def test_hard_ridge_rescued_by_fallback_chain(self, server):
        p = make_ridge_problem(D, N, cond=1e12, lam_rel=1e-20, seed=4)
        resp = server.solve_ridge(p.a, p.b, p.lam)
        assert resp.extra["failed"] == 0.0
        assert resp.executed_solver in RIDGE_SOLVERS

    def test_operator_cache_uses_ridge_namespace(self, ridge_problem):
        p = ridge_problem
        server = SketchServer(shards=1, policy="fixed", seed=0)
        # Pin routing to the sketch-needing ridge solver so an operator is built.
        first = server.solve_ridge(p.a, p.b, p.lam, solver="ridge_precond_lsqr")
        second = server.solve_ridge(p.a, p.b, p.lam, solver="ridge_precond_lsqr")
        assert not first.cache_hit and second.cache_hit
        ridge_keys = [k for k in server.cache.keys() if k[-1] == "ridge"]
        assert len(ridge_keys) == 1
        # The cached operator embeds the augmented (d + n)-row system.
        assert ridge_keys[0][1] == D + N

    def test_validation(self, server, ridge_problem):
        p = ridge_problem
        with pytest.raises(ValueError):
            server.solve_ridge(p.a, p.b, 0.0)
        with pytest.raises(ValueError):
            server.solve_ridge(p.a.T, p.b, p.lam)
        with pytest.raises(ValueError):
            server.solve_ridge(p.a, p.b[:-1], p.lam)

    def test_telemetry_counts_ridge_requests(self, server, ridge_problem):
        p = ridge_problem
        resp = server.solve_ridge(p.a, p.b, p.lam)
        stats = server.stats()
        assert stats["requests_served"] >= 1.0
        assert stats[f"solver_{resp.executed_solver}_requests"] >= 1.0


class TestApproxLowRankEndpoint:
    def test_rangefinder_near_optimal(self, server, lowrank_problem):
        p = lowrank_problem
        resp = server.approx_lowrank(p.a, RANK, power_iters=1)
        assert resp.method == "rangefinder"
        assert resp.relative_error <= 1.5 * p.optimal_error(RANK)
        assert resp.left.shape == (D, RANK)
        assert resp.right.shape == (RANK, 32)
        assert resp.simulated_seconds > 0

    def test_operator_cached_across_requests(self, server, lowrank_problem):
        p = lowrank_problem
        first = server.approx_lowrank(p.a, RANK)
        second = server.approx_lowrank(p.a, RANK)
        assert not first.cache_hit and second.cache_hit
        lowrank_keys = [k for k in server.cache.keys() if k[-1] == "lowrank"]
        assert len(lowrank_keys) == 1

    def test_frequent_directions_path(self, server, lowrank_problem):
        p = lowrank_problem
        resp = server.approx_lowrank(p.a, RANK, method="frequent_directions")
        assert resp.method == "frequent_directions"
        assert not resp.cache_hit  # deterministic: no operator state
        assert resp.relative_error <= 1.5 * p.optimal_error(RANK)
        assert resp.extra["ell"] == 2 * RANK

    def test_validation(self, server):
        with pytest.raises(ValueError):
            server.approx_lowrank(np.ones(8), 2)
        with pytest.raises(ValueError):
            server.approx_lowrank(np.ones((8, 4)), 2, method="nope")


class TestFdStreamingSessions:
    def test_fd_session_serves_without_cache_pin(self, server, rng):
        n = 8
        sid = server.open_stream(n, mode="fd", detector=False)
        assert server.streams.session(sid).cache_key is None
        x_true = np.ones(n)
        for _ in range(4):
            rows = rng.standard_normal((128, n))
            server.append_rows(sid, rows, rows @ x_true)
        resp = server.query_solution(sid)
        assert resp.relative_residual < 1e-8
        stats = server.close_stream(sid)
        assert stats["rows_ingested"] == 512.0
