"""Streaming sessions on the SketchServer: open -> ingest -> drift -> query -> close.

The serving-side contract of the streaming subsystem: sessions live on
scheduler-chosen shards, their window-sketch operators are pinned in the
operator cache under session keys (and removed at close), drift events and
re-solves flow into the server telemetry, and every served solution carries
the planner's attempted chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import SketchServer
from repro.serving.streaming import stream_session_cache_key
from repro.workloads.streams import piecewise_stationary_stream

pytestmark = pytest.mark.serving

N = 10


@pytest.fixture
def server():
    return SketchServer(shards=2, policy="cheapest_accurate", seed=0)


@pytest.fixture
def stream():
    return piecewise_stationary_stream(N, rows_per_segment=1536, batch_size=256, seed=4)


class TestSessionLifecycle:
    def test_open_pins_a_session_keyed_cache_entry(self, server):
        sid = server.open_stream(N, mode="landmark")
        session = server.streams.session(sid)
        entry = server.cache.peek(session.cache_key)
        assert entry is not None
        assert entry.shard == session.shard
        # The key's solver field carries the session identity, so it can
        # never alias a batch operator of the same shape.
        assert session.cache_key[-2] == f"stream-session:{sid}"
        assert session.cache_key == stream_session_cache_key(
            sid, N + 1, session.solver.k, session.solver.seed
        )

    def test_close_unpins_and_reports(self, server, stream):
        sid = server.open_stream(N)
        for batch in list(stream)[:3]:
            server.append_rows(sid, batch.rows, batch.targets)
        key = server.streams.session(sid).cache_key
        stats = server.close_stream(sid)
        assert server.cache.peek(key) is None
        assert stats["rows_ingested"] == 3 * 256
        assert stats["session_id"] == sid
        with pytest.raises(KeyError):
            server.query_solution(sid)
        with pytest.raises(KeyError):
            server.close_stream(sid)

    def test_active_session_survives_lru_pressure(self, rng, stream):
        """Batch-traffic evictions must not permanently unpin a live session."""
        server = SketchServer(shards=1, cache_capacity=2, seed=0)
        sid = server.open_stream(N)
        key = server.streams.session(sid).cache_key
        x_true = np.ones(N)
        for d in (512, 768, 1024):  # three distinct shapes flood the 2-entry LRU
            a = rng.standard_normal((d, N))
            server.solve(a, a @ x_true)
        assert server.cache.peek(key) is None  # evicted while the session idled
        batch = stream.batches[0]
        server.append_rows(sid, batch.rows, batch.targets)
        assert server.cache.peek(key) is not None  # ingest re-pinned it

    def test_sliding_ring_rotation_keeps_cache_entry_live(self, server, stream):
        """The cached operator must track the ring, not a retired bucket."""
        sid = server.open_stream(N, mode="sliding", bucket_rows=256, window_buckets=2)
        session = server.streams.session(sid)
        for batch in list(stream)[:4]:  # 1024 rows = several ring rotations
            server.append_rows(sid, batch.rows, batch.targets)
        entry = server.cache.peek(session.cache_key)
        assert entry.operator is session.solver.state.operator
        assert entry.operator.rows_seen > 0  # a live, mid-pass bucket

    def test_unseeded_server_can_open_streams(self, stream):
        """seed=None servers (supported on the batch path) stream too."""
        server = SketchServer(shards=1, seed=None)
        sid = server.open_stream(N, detector=False)
        assert server.streams.session(sid).solver.seed == 0  # hash-seed convention
        batch = stream.batches[0]
        server.append_rows(sid, batch.rows, batch.targets)
        assert server.query_solution(sid).x is not None

    def test_unknown_session_raises(self, server):
        with pytest.raises(KeyError):
            server.append_rows(99, np.zeros((1, N)), np.zeros(1))

    def test_sessions_spread_over_shards(self, server):
        shards = {server.streams.session(server.open_stream(N)).shard for _ in range(4)}
        assert len(shards) == 2  # the scheduler placed them on both shards


class TestEndToEnd:
    def test_ingest_drift_replan_query(self, server, stream):
        """The issue's acceptance flow: ingest -> drift -> re-plan -> query."""
        sid = server.open_stream(N, mode="landmark")
        drift_batches = []
        for batch in stream:
            report = server.append_rows(sid, batch.rows, batch.targets)
            if report.drift is not None:
                drift_batches.append(report)
        assert len(drift_batches) >= 1  # the injected shift was detected
        assert any(r.resolved for r in drift_batches)  # ... and re-solved

        resp = server.query_solution(sid)
        assert resp.x is not None and not resp.extra["failed"]
        x_new = stream.segment_truths[-1]
        err = np.linalg.norm(resp.x - x_new) / np.linalg.norm(x_new)
        assert err < 0.05  # the served model reflects the post-shift regime

        # The re-solve routed through the planner: the fallback chain is
        # recorded on the response (first link = planned solver), matching
        # the batch-serving contract.
        assert resp.attempted[0] == resp.planned_solver
        assert resp.executed_solver == resp.attempted[-1]
        assert resp.extra["attempted"] == "->".join(resp.attempted)
        assert np.isfinite(resp.cond_estimate)

        # The drift-triggered re-solve itself carried the attempted chain.
        session = server.streams.session(sid)
        assert "attempted" in session.solver.last_result.extra

    def test_query_latency_and_staleness_accounting(self, server, stream):
        sid = server.open_stream(N, detector=False)
        batches = list(stream)[:4]
        for batch in batches:
            server.append_rows(sid, batch.rows, batch.targets)
        first = server.query_solution(sid)
        assert first.resolved  # lazy solve happened here
        assert first.compute_seconds > 0.0
        assert first.comm_seconds > 0.0  # the solution crossed the network
        assert first.staleness_rows == 0

        cached = server.query_solution(sid)
        assert not cached.resolved
        assert cached.compute_seconds == 0.0

        server.append_rows(sid, batches[0].rows, batches[0].targets)
        stale = server.streams.session(sid).solver.staleness_rows
        assert stale == 256

    def test_telemetry_counters(self, server, stream):
        sid = server.open_stream(N)
        for batch in stream:
            server.append_rows(sid, batch.rows, batch.targets)
        server.query_solution(sid)
        server.query_solution(sid)
        stats = server.stats()
        assert stats["streams_opened"] == 1.0
        assert stats["open_streams"] == 1.0
        assert stats["stream_rows_ingested"] == stream.total_rows
        assert stats["stream_batches"] == len(stream)
        assert stats["stream_drift_events"] >= 1.0
        assert stats["stream_resolves"] >= 2.0  # warmup + drift at least
        assert stats["stream_resolve_seconds"] > 0.0  # eager solves are costed
        assert stats["stream_ingest_rows_per_second"] > 0.0
        assert "stream_mean_staleness_rows" in stats
        server.close_stream(sid)
        assert server.stats()["streams_closed"] == 1.0
        assert server.stats()["open_streams"] == 0.0

    def test_streams_and_batch_traffic_share_one_server(self, server, stream, rng):
        """Sessions coexist with micro-batched solve traffic."""
        sid = server.open_stream(N, detector=False)
        a = rng.standard_normal((2048, N))
        x_true = np.ones(N)
        for batch in list(stream)[:2]:
            server.append_rows(sid, batch.rows, batch.targets)
            server.submit(a, a @ x_true)
        responses = server.flush()
        assert len(responses) == 2
        assert all(r.relative_residual < 0.05 for r in responses)
        resp = server.query_solution(sid)
        assert resp.x is not None
        # Both kinds of work are visible in one stats snapshot.
        stats = server.stats()
        assert stats["requests_served"] == 2.0
        assert stats["stream_batches"] == 2.0

    def test_latency_budget_inherited_from_server_config(self, stream):
        server = SketchServer(shards=1, policy="adaptive", latency_budget=0.5, seed=0)
        sid = server.open_stream(N)
        assert server.streams.session(sid).solver.latency_budget == 0.5
        # A per-session budget overrides the config default.
        sid2 = server.open_stream(N, latency_budget=0.25)
        assert server.streams.session(sid2).solver.latency_budget == 0.25
        # The budget reaches the planner: the adaptive branch is exercised.
        batch = stream.batches[0]
        server.append_rows(sid, batch.rows, batch.targets)
        resp = server.query_solution(sid)
        assert resp.x is not None

    def test_fixed_policy_server_still_streams_adaptively(self, stream):
        server = SketchServer(shards=1, policy="fixed", seed=0)
        sid = server.open_stream(N, detector=False)
        for batch in list(stream)[:2]:
            server.append_rows(sid, batch.rows, batch.targets)
        resp = server.query_solution(sid)
        assert resp.extra["policy"] in ("cheapest_accurate", "adaptive")
