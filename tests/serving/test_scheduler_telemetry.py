"""Shard scheduler placement/accounting and telemetry percentiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.comm import CommCostModel
from repro.gpu.kernels import KernelClass, KernelRequest
from repro.gpu.pool import ExecutorPool
from repro.serving.scheduler import ShardScheduler
from repro.serving.telemetry import ServingTelemetry


def _busy(executor, seconds_worth_bytes: float) -> None:
    """Charge some simulated work to an executor."""
    executor.launch(
        KernelRequest(
            name="busy",
            kclass=KernelClass.STREAM,
            bytes_read=seconds_worth_bytes,
            phase="test",
        )
    )


class TestExecutorPool:
    def test_shards_are_independent_executors(self):
        pool = ExecutorPool(3, seed=0)
        assert pool.size == 3
        assert len({id(ex) for ex in pool}) == 3
        assert pool[0].rng is not pool[1].rng

    def test_least_loaded_and_makespan(self):
        pool = ExecutorPool(2, seed=0)
        _busy(pool[0], 1e9)
        assert pool.least_loaded() == 1
        assert pool.makespan() == pool.loads()[0]
        assert pool.total_busy_seconds() == sum(pool.loads())

    def test_reset_clocks(self):
        pool = ExecutorPool(2, seed=0)
        _busy(pool[1], 1e9)
        pool.reset_clocks()
        assert pool.loads() == [0.0, 0.0]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ExecutorPool(0)


class TestShardScheduler:
    def test_least_loaded_placement(self):
        pool = ExecutorPool(2, seed=0)
        sched = ShardScheduler(pool)
        _busy(pool[0], 1e9)
        assert sched.place() == 1

    def test_affinity_placement_wins(self):
        pool = ExecutorPool(2, seed=0)
        sched = ShardScheduler(pool)
        _busy(pool[0], 1e9)
        assert sched.place(preferred=0) == 0
        assert sched.batches_per_shard == [1, 0]

    def test_preferred_out_of_range(self):
        sched = ShardScheduler(ExecutorPool(2, seed=0))
        with pytest.raises(ValueError):
            sched.place(preferred=5)

    def test_transfer_charging_alpha_beta(self):
        model = CommCostModel(latency=1e-5, bandwidth=1e9)
        sched = ShardScheduler(ExecutorPool(1, seed=0), cost_model=model)
        seconds = sched.charge_transfer("result_return", 1e6)
        assert seconds == pytest.approx(1e-5 + 1e6 / 1e9)
        assert sched.comm_bytes() == 1e6
        assert sched.comm_seconds() == pytest.approx(seconds)
        assert sched.comm_by_name() == {"result_return": pytest.approx(seconds)}

    def test_replication_uses_broadcast_model(self):
        model = CommCostModel(latency=1e-5, bandwidth=1e9)
        sched = ShardScheduler(ExecutorPool(2, seed=0), cost_model=model)
        seconds = sched.charge_replication(1e6, 1)
        assert seconds == pytest.approx(model.broadcast_time(1e6, 2))


class TestTelemetry:
    def test_percentiles(self):
        tel = ServingTelemetry()
        for latency in np.linspace(1e-6, 100e-6, 100):
            tel.record_request(latency)
        summary = tel.latency_summary()
        assert summary.count == 100
        assert summary.p50 == pytest.approx(np.percentile(np.linspace(1e-6, 100e-6, 100), 50))
        assert summary.p50 < summary.p95 < summary.p99 <= summary.max

    def test_empty_summary_is_none(self):
        assert ServingTelemetry().latency_summary() is None

    def test_throughput_and_snapshot(self):
        tel = ServingTelemetry()
        for _ in range(10):
            tel.record_request(1e-6)
        tel.record_batch(10, 5e-6)
        snap = tel.snapshot(makespan_seconds=1e-3)
        assert snap["requests_per_second"] == pytest.approx(10 / 1e-3)
        assert snap["mean_batch_size"] == 10.0
        assert snap["batches_executed"] == 1.0

    def test_reset(self):
        tel = ServingTelemetry()
        tel.record_request(1.0)
        tel.record_batch(2, 1.0)
        tel.reset()
        assert tel.requests_served == 0
        assert tel.latency_summary() is None
