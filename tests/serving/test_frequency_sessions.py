"""Frequency-analytics sessions end to end (repro.serving.frequency).

The serving contract under test is *bit-for-bit transparency*: every answer
served through ``SketchServer`` / ``AsyncSketchServer`` session endpoints
must equal the corresponding direct library call on an identically-seeded,
identically-fed sketch -- through the sync path, the async stream lane, and
a durability crash/restore cycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability.store import DirectoryCheckpointStore, DurabilityConfig
from repro.problems.frequency import build_frequency_sketch, plan_frequency_sketch
from repro.serving import AsyncSketchServer, SketchServer
from repro.workloads.streams import zipf_stream

DOMAIN = 1 << 12
PHI, DELTA = 0.05, 1e-2


@pytest.fixture
def stream():
    return zipf_stream(DOMAIN, total_items=12_000, batch_size=4096, alpha=1.25, seed=3)


def _library_twin(server, stream, *, need_ranges=False, domain=DOMAIN):
    """The direct-library sketch a served session must match bit-for-bit."""
    plan = plan_frequency_sketch(domain, PHI, DELTA, need_ranges=need_ranges)
    twin = build_frequency_sketch(plan, seed=server.config.seed)
    for batch in stream:
        twin.update(batch.ids, batch.weights)
    return twin


class TestSyncEndpoints:
    def test_served_answers_equal_library_calls(self, stream):
        server = SketchServer(shards=2)
        sid = server.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
        for batch in stream:
            report = server.append_items(sid, batch.ids)
            assert report.items == batch.size
        twin = _library_twin(server, stream)

        assert server.query_heavy_hitters(sid).value == twin.heavy_hitters(PHI)
        assert server.query_norm(sid).value == twin.l2_estimate()
        ids = stream.all_ids()[:32]
        np.testing.assert_array_equal(
            server.query_point(sid, ids).value, twin.point_query(ids)
        )

    def test_range_needs_hierarchical_session(self):
        server = SketchServer(shards=1)
        flat = server.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
        with pytest.raises(RuntimeError):
            server.query_range(flat, 0, 64)
        ranged = server.open_frequency_stream(
            DOMAIN, phi=PHI, delta=DELTA, need_ranges=True
        )
        server.append_items(ranged, np.arange(128))
        assert server.query_range(ranged, 0, 128).value > 0.0

    def test_range_matches_library(self, stream):
        server = SketchServer(shards=2)
        sid = server.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA, need_ranges=True)
        for batch in stream:
            server.append_items(sid, batch.ids)
        twin = _library_twin(server, stream, need_ranges=True)
        for lo, hi in [(0, 64), (100, 2000), (0, DOMAIN)]:
            assert server.query_range(sid, lo, hi).value == twin.range_query(lo, hi)

    def test_telemetry_and_stats(self, stream):
        server = SketchServer(shards=2)
        sid = server.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
        for batch in stream:
            server.append_items(sid, batch.ids)
        server.query_heavy_hitters(sid)
        server.query_norm(sid)
        assert server.stats()["open_frequency_streams"] == 1.0
        snap = server.telemetry.snapshot()
        assert snap["frequency_sessions_opened"] == 1.0
        assert snap["frequency_items_ingested"] == float(stream.total_items)
        assert snap["frequency_batches"] == float(len(stream))
        assert snap["frequency_queries"] == 2.0
        assert snap["frequency_heavy_hitters_queries"] == 1.0
        assert snap["frequency_norm_queries"] == 1.0
        assert snap["frequency_ingest_seconds"] > 0.0
        stats = server.close_frequency_stream(sid)
        assert stats["items_seen"] == float(stream.total_items)
        assert server.telemetry.snapshot()["frequency_sessions_closed"] == 1.0
        with pytest.raises(KeyError):
            server.query_norm(sid)

    def test_queries_and_ingest_advance_the_shard_clock(self, stream):
        server = SketchServer(shards=1)
        sid = server.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
        report = server.append_items(sid, stream.batches[0].ids)
        assert report.simulated_seconds > 0.0
        response = server.query_heavy_hitters(sid)
        assert response.compute_seconds > 0.0
        assert response.comm_seconds > 0.0
        assert response.simulated_seconds == pytest.approx(
            response.compute_seconds + response.comm_seconds
        )


class TestDurability:
    def test_crash_restore_serves_bitwise_identical_answers(self, stream, tmp_path):
        dur = DurabilityConfig(
            store=DirectoryCheckpointStore(str(tmp_path)),
            checkpoint_interval_batches=2,
        )
        before = SketchServer(shards=2, durability=dur)
        sid = before.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
        for batch in stream:
            before.append_items(sid, batch.ids)
        hh = before.query_heavy_hitters(sid).value
        norm = before.query_norm(sid).value

        # Crash: a brand-new server over the same store.
        after = SketchServer(shards=2, durability=dur)
        report = after.restore()
        assert sid in report.restored and not report.failed
        assert after.query_heavy_hitters(sid).value == hh
        assert after.query_norm(sid).value == norm
        assert after.frequencies.session(sid).engine.items_seen == stream.total_items

    def test_hierarchical_sessions_round_trip(self, tmp_path):
        dur = DurabilityConfig(
            store=DirectoryCheckpointStore(str(tmp_path)),
            checkpoint_interval_batches=10,
        )
        before = SketchServer(shards=1, durability=dur)
        sid = before.open_frequency_stream(
            DOMAIN, phi=0.1, delta=DELTA, need_ranges=True
        )
        rng = np.random.default_rng(0)
        before.append_items(sid, rng.integers(0, DOMAIN, size=5000))
        expected = before.query_range(sid, 17, 3001).value

        after = SketchServer(shards=1, durability=dur)
        after.restore()
        assert after.query_range(sid, 17, 3001).value == expected

    def test_save_covers_both_session_kinds(self, tmp_path):
        dur = DurabilityConfig(store=DirectoryCheckpointStore(str(tmp_path)))
        server = SketchServer(shards=2, durability=dur)
        stream_id = server.open_stream(8)
        freq_id = server.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
        saved = server.save()
        assert set(saved) == {stream_id, freq_id}
        assert all(size > 0 for size in saved.values())

    def test_corrupt_checkpoint_is_refused_with_typed_failure(self, tmp_path):
        dur = DurabilityConfig(store=DirectoryCheckpointStore(str(tmp_path)))
        before = SketchServer(shards=1, durability=dur)
        sid = before.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
        before.append_items(sid, np.arange(512) % DOMAIN)
        before.save()

        checkpoint = tmp_path / f"freq-session-{sid}" / "checkpoint.bin"
        blob = bytearray(checkpoint.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        checkpoint.write_bytes(bytes(blob))

        after = SketchServer(shards=1, durability=dur)
        report = after.restore()
        assert sid not in report.restored
        assert "ChecksumError" in report.failed[sid]
        assert sid not in after.frequencies

    def test_close_deletes_durable_state(self, tmp_path):
        dur = DurabilityConfig(store=DirectoryCheckpointStore(str(tmp_path)))
        server = SketchServer(shards=1, durability=dur)
        sid = server.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
        server.append_items(sid, np.arange(100))
        server.close_frequency_stream(sid)
        fresh = SketchServer(shards=1, durability=dur)
        assert fresh.restore().restored == {}


class TestAsyncRuntime:
    def test_stream_lane_answers_equal_library_calls(self, stream):
        runtime = AsyncSketchServer(shards=2, workers=2)
        try:
            sid = runtime.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
            futures = [runtime.append_items(sid, b.ids) for b in stream]
            hh_future = runtime.query_heavy_hitters(sid)
            norm_future = runtime.query_norm(sid)
            reports = [f.result() for f in futures]
            # Per-session FIFO: batches fold in admission order.
            assert reports[-1].items_seen == stream.total_items
            twin = _library_twin(runtime.server, stream)
            assert hh_future.result().value == twin.heavy_hitters(PHI)
            assert norm_future.result().value == twin.l2_estimate()
            stats = runtime.close_frequency_stream(sid)
            assert stats["items_seen"] == float(stream.total_items)
        finally:
            runtime.stop()

    def test_unknown_session_rejected_at_admission(self):
        runtime = AsyncSketchServer(shards=1, workers=1)
        try:
            with pytest.raises(KeyError):
                runtime.append_items(999, np.arange(4))
            with pytest.raises(KeyError):
                runtime.query_norm(999)
        finally:
            runtime.stop()

    def test_frequency_and_solver_streams_coexist(self, stream):
        runtime = AsyncSketchServer(shards=2, workers=2)
        try:
            freq_id = runtime.open_frequency_stream(DOMAIN, phi=PHI, delta=DELTA)
            solve_id = runtime.open_stream(8)
            rng = np.random.default_rng(1)
            rows, targets = rng.standard_normal((256, 8)), rng.standard_normal(256)
            f1 = runtime.append_items(freq_id, stream.batches[0].ids)
            f2 = runtime.append_rows(solve_id, rows, targets)
            f3 = runtime.query_norm(freq_id)
            f4 = runtime.query_solution(solve_id)
            assert f1.result().items == stream.batches[0].size
            assert f2.result().rows == 256
            assert f3.result().value > 0.0
            assert f4.result().x is not None
            runtime.close_frequency_stream(freq_id)
            runtime.close_stream(solve_id)
        finally:
            runtime.stop()
