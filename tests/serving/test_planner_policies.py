"""SketchServer routing policies: registry dispatch, telemetry, fallbacks."""

from __future__ import annotations

import weakref

import numpy as np
import pytest

from repro.linalg.conditioning import matrix_with_condition
from repro.serving import ServerConfig, SketchServer

D, N = 2048, 8


@pytest.fixture
def easy(rng):
    a = matrix_with_condition(D, N, 100.0, seed=1) * np.sqrt(float(D) * N)
    return a, a @ np.ones(N)


@pytest.fixture
def hard(rng):
    a = matrix_with_condition(D, N, 1e12, seed=2)
    return a, a @ np.ones(N)


class TestConfig:
    def test_policy_normalised_and_validated(self):
        assert ServerConfig(policy="ADAPTIVE").policy == "adaptive"
        with pytest.raises(ValueError):
            ServerConfig(policy="random")
        with pytest.raises(ValueError):
            ServerConfig(oversampling=0.5)
        with pytest.raises(ValueError):
            ServerConfig(accuracy_target=0.0)

    def test_all_registered_solvers_accepted(self):
        for solver in ("normal_equations", "qr", "sketch_precond_lsqr",
                       "sketch_and_solve", "rand_cholqr"):
            assert ServerConfig(solver=solver).solver == solver

    def test_oversampling_threads_into_operator_build(self, easy):
        a, b = easy
        server = SketchServer(kind="gaussian", shards=1, seed=0, oversampling=4.0)
        server.solve(a, b)
        (key,) = server.cache.keys()
        assert key[3] == 4 * N  # k = oversampling * n

    def test_default_policy_is_fixed(self):
        assert ServerConfig().policy == "fixed"


class TestFixedPolicyServesEverySolver:
    @pytest.mark.parametrize("solver", ["normal_equations", "qr", "sketch_precond_lsqr"])
    def test_direct_and_iterative_solvers_served(self, easy, solver):
        a, b = easy
        server = SketchServer(solver=solver, shards=1, seed=0)
        resp = server.solve(a, b)
        assert resp.executed_solver == solver
        assert resp.relative_residual < 1e-5
        np.testing.assert_allclose(resp.x, np.ones(N), rtol=1e-4, atol=1e-5)

    def test_fixed_normal_equations_still_fails_hard(self, hard):
        """The pre-registry baseline behaviour is preserved under 'fixed'."""
        a, b = hard
        server = SketchServer(solver="normal_equations", shards=1, seed=0)
        resp = server.solve(a, b)
        assert resp.extra["failed"] == 1.0
        assert resp.x is None
        assert server.stats()["failed_requests"] == 1.0

    def test_direct_solver_batches_skip_operator_cache(self, easy):
        a, b = easy
        server = SketchServer(solver="normal_equations", shards=1, seed=0)
        server.solve(a, b)
        assert len(server.cache) == 0
        assert server.cache.stats.lookups == 0


class TestAdaptiveRouting:
    def test_hard_traffic_routed_off_normal_equations(self, easy, hard):
        server = SketchServer(policy="cheapest_accurate", shards=1, seed=0,
                              accuracy_target=1e-6)
        easy_resp = server.solve(*easy)
        hard_resp = server.solve(*hard)
        assert easy_resp.extra["failed"] == 0.0 and hard_resp.extra["failed"] == 0.0
        assert hard_resp.executed_solver != "normal_equations"
        assert hard_resp.relative_residual < 1e-6
        assert np.isfinite(easy_resp.extra["cond_estimate"])

    def test_conditioning_probe_is_cached_per_matrix(self, easy):
        a, b = easy
        server = SketchServer(policy="cheapest_accurate", shards=1, seed=0)
        server.solve(a, b)
        server.solve(a, 2.0 * b)
        assert len(server._cond_cache) == 1

    def test_per_request_accuracy_target_routes_independently(self, hard):
        a, b = hard
        server = SketchServer(policy="cheapest_accurate", shards=1, seed=0,
                              accuracy_target=1e-6)
        strict = server.solve(a, b, accuracy_target=1e-10)
        loose = server.solve(a, b, accuracy_target=1e-2)
        assert strict.extra["failed"] == 0.0 and loose.extra["failed"] == 0.0
        assert strict.relative_residual < 1e-10

    def test_requests_with_different_targets_do_not_fuse(self, easy):
        a, b = easy
        server = SketchServer(policy="cheapest_accurate", shards=1, max_batch=8, seed=0)
        server.submit(a, b, accuracy_target=1e-4)
        server.submit(a, b, accuracy_target=1e-10)
        responses = server.flush()
        assert [r.batch_size for r in responses] == [1, 1]

    def test_policy_recorded_on_responses(self, easy):
        a, b = easy
        server = SketchServer(policy="adaptive", shards=1, seed=0)
        resp = server.solve(a, b)
        assert resp.policy == "adaptive"
        assert resp.extra["planned"] == resp.executed_solver


class TestFallbackTelemetry:
    def test_runtime_fallback_recorded(self, hard):
        a, b = hard
        server = SketchServer(policy="cheapest_accurate", shards=1, seed=0,
                              accuracy_target=1e-2)
        server._cond_cache[(id(a), a.shape)] = (weakref.ref(a), (100.0, None))  # poison: looks benign
        resp = server.solve(a, b)
        if resp.fallbacks:  # planner chose a breakable solver and was rescued
            assert resp.extra["failed"] == 0.0
            assert server.stats()["fallback_batches"] >= 1.0
            hops = server.telemetry.fallback_counts()
            assert sum(hops.values()) >= 1

    def test_per_solver_latency_histograms(self, easy, hard):
        server = SketchServer(shards=1, seed=0)  # fixed policy, per-request solver
        server.solve(*easy, solver="sketch_and_solve")
        server.solve(*easy, solver="rand_cholqr")
        server.solve(*hard, solver="qr")
        stats = server.stats()
        seen = server.telemetry.solvers_seen()
        assert set(seen) == {"sketch_and_solve", "rand_cholqr", "qr"}
        for solver in seen:
            assert stats[f"solver_{solver}_requests"] >= 1.0
            assert stats[f"solver_{solver}_p99_seconds"] > 0.0
            summary = server.telemetry.solver_latency_summary(solver)
            assert summary.p50 <= summary.p99

    def test_failed_requests_counted(self, hard):
        a, b = hard
        server = SketchServer(solver="normal_equations", shards=1, max_batch=4, seed=0)
        for _ in range(4):
            server.submit(a, b)
        server.flush()
        assert server.stats()["failed_requests"] == 4.0
