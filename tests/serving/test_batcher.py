"""Micro-batcher: fusion grouping, splitting, ordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.batcher import MicroBatch, MicroBatcher
from repro.serving.requests import SolveRequest

D, N = 256, 4


def _req(rid, a, rng, **kw):
    return SolveRequest(request_id=rid, a=a, b=rng.standard_normal(D), **kw)


@pytest.fixture
def a1(rng):
    return rng.standard_normal((D, N))


@pytest.fixture
def a2(rng):
    return rng.standard_normal((D, N))


class TestGrouping:
    def test_same_matrix_requests_fuse(self, rng, a1):
        batcher = MicroBatcher(max_batch=8)
        for i in range(5):
            batcher.add(_req(i, a1, rng))
        batches = batcher.drain()
        assert len(batches) == 1
        assert batches[0].size == 5
        assert batches[0].a is a1

    def test_distinct_matrices_do_not_fuse(self, rng, a1, a2):
        batcher = MicroBatcher(max_batch=8)
        batcher.add(_req(0, a1, rng))
        batcher.add(_req(1, a2, rng))
        batches = batcher.drain()
        assert len(batches) == 2

    def test_kind_and_solver_split_groups(self, rng, a1):
        batcher = MicroBatcher(max_batch=8)
        batcher.add(_req(0, a1, rng, kind="multisketch"))
        batcher.add(_req(1, a1, rng, kind="gaussian"))
        batcher.add(_req(2, a1, rng, solver="rand_cholqr"))
        assert len(batcher.drain()) == 3

    def test_drain_clears_queue(self, rng, a1):
        batcher = MicroBatcher(max_batch=8)
        batcher.add(_req(0, a1, rng))
        assert batcher.pending == 1
        batcher.drain()
        assert batcher.pending == 0
        assert batcher.drain() == []


class TestSplitting:
    def test_oversize_group_splits_into_chunks(self, rng, a1):
        batcher = MicroBatcher(max_batch=4)
        for i in range(10):
            batcher.add(_req(i, a1, rng))
        batches = batcher.drain()
        assert [b.size for b in batches] == [4, 4, 2]
        # chunks preserve submission order
        ids = [r.request_id for b in batches for r in b.requests]
        assert ids == list(range(10))

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)


class TestMicroBatch:
    def test_rhs_block_stacks_in_request_order(self, rng, a1):
        reqs = [_req(i, a1, rng) for i in range(3)]
        batch = MicroBatch(reqs)
        block = batch.rhs_block()
        assert block.shape == (D, 3)
        for j, r in enumerate(reqs):
            np.testing.assert_array_equal(block[:, j], r.b)

    def test_mixed_group_keys_rejected(self, rng, a1, a2):
        with pytest.raises(ValueError):
            MicroBatch([_req(0, a1, rng), _req(1, a2, rng)])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            MicroBatch([])


class TestRequestValidation:
    def test_wide_matrix_rejected(self, rng):
        with pytest.raises(ValueError):
            SolveRequest(request_id=0, a=rng.standard_normal((4, 8)), b=np.zeros(4))

    def test_mismatched_rhs_rejected(self, rng, a1):
        with pytest.raises(ValueError):
            SolveRequest(request_id=0, a=a1, b=np.zeros(D + 1))

    def test_unknown_kind_rejected(self, rng, a1):
        with pytest.raises(ValueError):
            SolveRequest(request_id=0, a=a1, b=np.zeros(D), kind="warp")

    def test_unknown_solver_rejected(self, rng, a1):
        with pytest.raises(ValueError):
            SolveRequest(request_id=0, a=a1, b=np.zeros(D), solver="magic")
