"""Concurrency stress tests for the OperatorCache.

The concurrent runtime's workers all funnel through one cache, so its LRU
bookkeeping must be race-free: an unlocked eviction loop can double-pop for
the same free slot, and unlocked counter increments (hits/misses/evictions)
are read-modify-write races that silently lose updates.  These tests churn
the cache from many threads and assert the conservation laws that the
per-cache lock guarantees:

* every inserted entry is, at the end, exactly one of {still cached,
  evicted, discarded} -- nothing lost, nothing double-counted;
* hit + miss counters equal the number of lookups issued;
* entries kept warm (touched) in an uncrowded cache are never lost.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.gpu.executor import GPUExecutor
from repro.gpu.device import H100_SXM5
from repro.serving.cache import CacheEntry, OperatorCache, build_operator


@pytest.fixture(scope="module")
def operator():
    """One tiny shared operator: entry identity, not sketch state, is under test."""
    executor = GPUExecutor(H100_SXM5, numeric=False, seed=0, track_memory=False)
    return build_operator("countsketch", 64, 4, k=16, executor=executor, seed=0)


def _churn(cache, operator, thread_id, iterations, counters, barrier):
    rng = np.random.default_rng(thread_id)
    my_keys = []
    barrier.wait()
    for i in range(iterations):
        key = ("churn", thread_id, i)
        cache.put(key, CacheEntry(operator=operator, shard=0))
        my_keys.append(key)
        counters["puts"][thread_id] += 1
        # Look up a random recent key (own or not necessarily present).
        probe = ("churn", thread_id, int(rng.integers(0, i + 1)))
        cache.get(probe)
        counters["gets"][thread_id] += 1
        # Discard an old own key every few iterations.
        if i % 3 == 2:
            victim = my_keys[int(rng.integers(0, len(my_keys)))]
            if cache.discard(victim):
                counters["discards"][thread_id] += 1


def test_eviction_accounting_survives_threaded_churn(operator):
    threads_n, iterations = 4, 1500
    cache = OperatorCache(capacity=16)
    counters = {
        "puts": [0] * threads_n,
        "gets": [0] * threads_n,
        "discards": [0] * threads_n,
    }
    barrier = threading.Barrier(threads_n)
    threads = [
        threading.Thread(
            target=_churn, args=(cache, operator, t, iterations, counters, barrier)
        )
        for t in range(threads_n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    assert not any(t.is_alive() for t in threads)

    # Conservation: every unique inserted key ended in exactly one place.
    puts = sum(counters["puts"])
    discards = sum(counters["discards"])
    assert len(cache) + cache.stats.evictions + discards == puts, (
        f"lost/double-counted entries: {len(cache)} cached + "
        f"{cache.stats.evictions} evicted + {discards} discarded != {puts} put"
    )
    assert len(cache) <= cache.capacity
    # Every lookup was counted exactly once as a hit or a miss.
    assert cache.stats.hits + cache.stats.misses == sum(counters["gets"])


def test_pinned_entries_survive_uncrowded_churn(operator):
    # Capacity exceeds the whole working set, so nothing may ever be
    # evicted -- and the pinned (session-style) entries must all survive
    # arbitrary interleavings of put/get/touch/discard.
    cache = OperatorCache(capacity=512)
    pins = [("session", i) for i in range(8)]
    for key in pins:
        cache.put(key, CacheEntry(operator=operator, shard=1))
    stop = threading.Event()
    errors = []

    def pinner():
        while not stop.is_set():
            for key in pins:
                if not cache.touch(key):
                    errors.append(f"pin {key} lost")  # pragma: no cover
                    return

    def churner(thread_id):
        for i in range(1500):
            key = ("churn", thread_id, i)
            cache.put(key, CacheEntry(operator=operator, shard=0))
            cache.get(key)
            cache.discard(key)

    pin_thread = threading.Thread(target=pinner)
    churn_threads = [threading.Thread(target=churner, args=(t,)) for t in range(4)]
    pin_thread.start()
    for t in churn_threads:
        t.start()
    for t in churn_threads:
        t.join(timeout=120.0)
    stop.set()
    pin_thread.join(timeout=30.0)

    assert not errors
    assert cache.stats.evictions == 0
    for key in pins:
        entry = cache.peek(key)
        assert entry is not None and entry.shard == 1
    # All transient keys were discarded by their own thread.
    assert len(cache) == len(pins)


def test_concurrent_same_key_puts_keep_one_live_entry(operator):
    cache = OperatorCache(capacity=8)
    key = ("contested",)
    barrier = threading.Barrier(8)

    def writer(shard):
        barrier.wait()
        for _ in range(500):
            cache.put(key, CacheEntry(operator=operator, shard=shard))

    threads = [threading.Thread(target=writer, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    entry = cache.peek(key)
    assert entry is not None and entry.shard in range(8)
    assert len(cache) == 1
    assert cache.stats.evictions == 0  # replacement is not eviction
