"""SketchServer end-to-end: correctness, fusion, caching, sharding, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.executor import GPUExecutor
from repro.linalg.lstsq import sketch_and_solve
from repro.serving import ServerConfig, SketchServer, naive_solve_loop
from repro.serving.cache import build_operator

D, N = 2048, 8


@pytest.fixture
def problem(rng):
    a = rng.standard_normal((D, N))
    x_true = np.linspace(-1.0, 1.0, N)
    return a, x_true


class TestCorrectness:
    @pytest.mark.parametrize("kind", ["multisketch", "countsketch", "gaussian", "srht"])
    def test_batched_solution_matches_unbatched_reference(self, rng, problem, kind):
        a, x_true = problem
        bs = [a @ x_true + 0.01 * rng.standard_normal(D) for _ in range(4)]

        server = SketchServer(kind=kind, shards=1, max_batch=4, seed=11)
        for b in bs:
            server.submit(a, b)
        responses = server.flush()
        assert responses[0].batch_size == 4

        # Reference: the same operator (same seed -> identical sketch state)
        # applied one request at a time.
        ex = GPUExecutor(numeric=True, seed=123, track_memory=False)
        op = build_operator(kind, D, N, executor=ex, seed=11)
        for b, resp in zip(bs, responses):
            ref = sketch_and_solve(a, b, op)
            np.testing.assert_allclose(resp.x, ref.x, rtol=1e-8, atol=1e-10)
            assert resp.relative_residual == pytest.approx(ref.relative_residual, rel=1e-6)

    def test_rand_cholqr_served_has_no_distortion(self, rng, problem):
        a, x_true = problem
        b = a @ x_true  # consistent system: exact solution exists
        server = SketchServer(kind="multisketch", solver="rand_cholqr", shards=1, seed=2)
        resp = server.solve(a, b)
        assert resp.relative_residual < 1e-10
        np.testing.assert_allclose(resp.x, x_true, rtol=1e-8, atol=1e-8)

    def test_solve_returns_response_for_the_right_request(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="countsketch", shards=1, seed=2)
        server.submit(a, a @ x_true)
        resp = server.solve(a, 2.0 * (a @ x_true))
        assert resp.request_id == 1
        assert server.pending == 0

    def test_responses_in_submission_order(self, rng, problem):
        a, _ = problem
        a2 = rng.standard_normal((D, N))
        server = SketchServer(kind="countsketch", shards=2, seed=2)
        ids = []
        for i in range(6):
            m = a if i % 2 == 0 else a2
            ids.append(server.submit(m, m @ np.ones(N)))
        got = [r.request_id for r in server.flush()]
        assert got == ids


class TestCachingAndBatching:
    def test_repeated_shape_traffic_hits_cache(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="multisketch", shards=2, max_batch=8, seed=0)
        for _ in range(12):
            for _ in range(8):
                server.submit(a, a @ x_true + rng.standard_normal(D))
            server.flush()
        stats = server.stats()
        # 12 batches, one cold build: the hit rate counts one lookup per
        # batch, i.e. genuine cross-batch operator reuse.
        assert stats["cache_hit_rate"] > 0.9
        assert stats["cache_misses"] == 1.0
        assert stats["cache_hits"] == 11.0
        assert stats["mean_batch_size"] == 8.0

    def test_cache_hit_routes_to_owning_shard_without_replication(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="countsketch", shards=2, seed=0,
                              replicate_operators=False)
        first = server.solve(a, a @ x_true)
        second = server.solve(a, 2.0 * (a @ x_true))
        assert second.cache_hit and not first.cache_hit
        assert first.shard == second.shard

    def test_hot_operator_replicates_to_idle_shard(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="countsketch", shards=2, seed=0)
        first = server.solve(a, a @ x_true)
        second = server.solve(a, 2.0 * (a @ x_true))
        # The owning shard is busy, the other idle: the operator is rebuilt
        # from its seed on the idle shard and the batch runs there.
        assert second.cache_hit
        assert second.shard != first.shard
        assert "operator_key" in server.scheduler.comm_by_name()
        np.testing.assert_allclose(first.x, second.x * 0.5, rtol=1e-12)

    def test_seedless_server_serves_without_replication(self, rng, problem):
        """Unseeded operators are not rebuildable, so they stay pinned."""
        a, x_true = problem
        server = SketchServer(kind="gaussian", shards=2, max_batch=2, seed=None)
        for _ in range(8):
            server.submit(a, a @ x_true + 0.01 * rng.standard_normal(D))
        responses = server.flush()
        assert len(responses) == 8
        assert len({r.shard for r in responses}) == 1  # pinned to the owner
        assert all(r.relative_residual < 0.05 for r in responses)

    def test_replicated_traffic_uses_every_shard(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="multisketch", shards=2, max_batch=4, seed=0)
        for _ in range(16):
            server.submit(a, a @ x_true + rng.standard_normal(D))
        server.flush()
        loads = server.pool.loads()
        assert min(loads) > 0.0, f"a shard idled on hot single-shape traffic: {loads}"

    def test_distinct_shapes_spread_across_shards(self, rng):
        server = SketchServer(kind="countsketch", shards=2, seed=0)
        a1 = rng.standard_normal((D, N))
        a2 = rng.standard_normal((D // 2, N))
        server.solve(a1, np.ones(D))
        server.solve(a2, np.ones(D // 2))
        assert sorted(server.scheduler.batches_per_shard) == [1, 1]

    def test_max_batch_splits_large_groups(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="countsketch", shards=1, max_batch=4, seed=0)
        for _ in range(10):
            server.submit(a, a @ x_true)
        responses = server.flush()
        assert sorted({r.batch_size for r in responses}) == [2, 4]
        assert server.stats()["batches_executed"] == 3.0

    def test_cache_eviction_keeps_serving(self, rng):
        server = SketchServer(kind="gaussian", shards=1, cache_capacity=1, seed=0)
        a1 = rng.standard_normal((D, N))
        a2 = rng.standard_normal((D // 2, N))
        server.solve(a1, np.ones(D))
        server.solve(a2, np.ones(D // 2))  # evicts a1's operator
        resp = server.solve(a1, np.ones(D))  # rebuilt from the seed
        assert not resp.cache_hit
        assert server.cache.stats.evictions >= 1


class TestStatsAndComm:
    def test_stats_keys_present(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="multisketch", shards=2, seed=0)
        server.solve(a, a @ x_true)
        stats = server.stats()
        for key in ("requests_per_second", "p50_seconds", "p95_seconds", "p99_seconds",
                    "cache_hit_rate", "comm_seconds", "comm_bytes", "makespan_seconds",
                    "shard0_busy_seconds", "shard1_busy_seconds"):
            assert key in stats, key

    def test_cross_shard_traffic_charged_per_batch(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="countsketch", shards=2, seed=0,
                              replicate_operators=False)
        server.solve(a, a @ x_true)
        server.solve(a, a @ x_true)
        # one result_return record per executed batch, n*1 doubles each
        assert len(server.scheduler.records) == 2
        assert server.scheduler.comm_bytes() == 2 * N * 8

    def test_latency_includes_comm(self, rng, problem):
        a, x_true = problem
        server = SketchServer(kind="countsketch", shards=1, seed=0)
        resp = server.solve(a, a @ x_true)
        assert resp.simulated_seconds == pytest.approx(resp.compute_seconds + resp.comm_seconds)
        assert resp.comm_seconds > 0

    def test_sketch_request_served_and_cached(self, rng, problem):
        a, _ = problem
        server = SketchServer(kind="countsketch", shards=1, seed=0)
        r1 = server.sketch(a)
        r2 = server.sketch(a)
        assert r1.sketch.shape == (r1.k, N)
        np.testing.assert_array_equal(r1.sketch, r2.sketch)
        assert not r1.cache_hit and r2.cache_hit
        assert server.stats()["sketch_requests"] == 2.0


class TestConfig:
    def test_config_object_and_overrides_exclusive(self):
        with pytest.raises(ValueError):
            SketchServer(ServerConfig(), shards=3)

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            SketchServer(shards=0)

    def test_naive_loop_reference(self, rng, problem):
        a, x_true = problem
        traffic = [(a, a @ x_true) for _ in range(4)]
        out = naive_solve_loop(traffic, kind="countsketch", seed=0)
        assert out["requests"] == 4
        assert out["simulated_seconds"] > 0
        assert all(r.relative_residual < 1e-6 for r in out["results"])
