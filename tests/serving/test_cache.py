"""Operator cache: keys, LRU behaviour, stats, and operator reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.cache import (
    CacheEntry,
    OperatorCache,
    build_operator,
    operator_cache_key,
    resolve_embedding_dim,
)

D, N = 2048, 16


class TestKeys:
    def test_key_fields(self):
        key = operator_cache_key("multi", D, N, 32, 7)
        assert key == ("multisketch", D, N, 32, 7, "<f8", "", "")

    def test_solver_family_partitions_keys(self):
        base = operator_cache_key("multi", D, N, 32, 7)
        sas = operator_cache_key("multi", D, N, 32, 7, solver="sketch_and_solve")
        rcq = operator_cache_key("multi", D, N, 32, 7, solver="rand_cholqr")
        assert len({base, sas, rcq}) == 3

    def test_problem_class_partitions_keys(self):
        base = operator_cache_key("multi", D, N, 32, 7, solver="ridge_precond_lsqr")
        ridge = operator_cache_key(
            "multi", D, N, 32, 7, solver="ridge_precond_lsqr", problem="ridge"
        )
        lowrank = operator_cache_key("multi", D, N, 32, 7, problem="lowrank")
        assert len({base, ridge, lowrank}) == 3

    def test_kind_aliases_normalise(self):
        assert operator_cache_key("count_gauss", D, N, 32, 7) == operator_cache_key(
            "multisketch", D, N, 32, 7
        )
        assert operator_cache_key("gauss", D, N, 32, 7) == operator_cache_key(
            "gaussian", D, N, 32, 7
        )

    def test_distinct_on_every_field(self):
        base = operator_cache_key("gaussian", D, N, 32, 7)
        assert operator_cache_key("srht", D, N, 32, 7) != base
        assert operator_cache_key("gaussian", 2 * D, N, 32, 7) != base
        assert operator_cache_key("gaussian", D, N, 64, 7) != base
        assert operator_cache_key("gaussian", D, N, 32, 8) != base

    def test_resolve_embedding_dim_matches_paper_defaults(self):
        assert resolve_embedding_dim("gaussian", D, N) == 2 * N
        assert resolve_embedding_dim("srht", D, N) == 2 * N
        assert resolve_embedding_dim("multisketch", D, N) == 2 * N
        assert resolve_embedding_dim("countsketch", D, N) == min(2 * N * N, D)

    def test_operator_cache_key_matches_operator_identity(self, executor):
        """Operators rebuilt from equal keys produce identical sketches."""
        op1 = build_operator("countsketch", D, N, executor=executor, seed=3)
        op2 = build_operator("countsketch", D, N, executor=executor, seed=3)
        assert op1.cache_key() == op2.cache_key()
        a = np.random.default_rng(0).standard_normal((D, N))
        np.testing.assert_array_equal(op1.sketch_host(a), op2.sketch_host(a))


class TestLRU:
    def _entry(self, executor, seed):
        op = build_operator("gaussian", 64, 4, executor=executor, seed=seed)
        return CacheEntry(operator=op, shard=0)

    def test_hit_miss_and_stats(self, executor):
        cache = OperatorCache(capacity=4)
        key = operator_cache_key("gaussian", 64, 4, 8, 0)
        assert cache.get(key) is None
        cache.put(key, self._entry(executor, 0))
        assert cache.get(key) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self, executor):
        cache = OperatorCache(capacity=2)
        keys = [operator_cache_key("gaussian", 64, 4, 8, s) for s in range(3)]
        cache.put(keys[0], self._entry(executor, 0))
        cache.put(keys[1], self._entry(executor, 1))
        cache.get(keys[0])  # refresh 0; 1 becomes LRU
        cache.put(keys[2], self._entry(executor, 2))
        assert cache.stats.evictions == 1
        assert keys[1] not in cache
        assert keys[0] in cache and keys[2] in cache

    def test_capacity_bound_holds(self, executor):
        cache = OperatorCache(capacity=3)
        for s in range(10):
            cache.put(operator_cache_key("gaussian", 64, 4, 8, s), self._entry(executor, s))
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            OperatorCache(capacity=0)

    def test_peek_does_not_touch_stats(self, executor):
        cache = OperatorCache(capacity=2)
        key = operator_cache_key("gaussian", 64, 4, 8, 0)
        cache.put(key, self._entry(executor, 0))
        cache.peek(key)
        cache.peek(operator_cache_key("gaussian", 64, 4, 8, 1))
        assert cache.stats.lookups == 0
