"""End-to-end observability: tracing threaded through the serving stack.

The unit behaviour of spans, the registry and the exporters lives in
``tests/obs``; these tests pin the integration invariants ISSUE 6 names:
every admitted request yields exactly one *complete* span tree, shed
requests get a terminal ``shed`` span, the sync server traces too, cache
events land in the metrics registry, and the telemetry recorders stay
lock-safe under concurrent reset.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import AsyncSketchServer, DeadlineExceededError
from repro.serving.requests import AdmissionError
from repro.serving.server import ServerConfig, SketchServer
from repro.serving.telemetry import ServingTelemetry

pytestmark = pytest.mark.serving


def _mixed_load(runtime: AsyncSketchServer, rng: np.random.Generator):
    """Drive solves + ridge + streaming; return (futures, admitted_count)."""
    futures = []
    for _ in range(8):
        a = rng.standard_normal((256, 12))
        b = rng.standard_normal(256)
        futures.append(runtime.submit(a, b))
    for _ in range(4):
        a = rng.standard_normal((192, 10))
        b = rng.standard_normal(192)
        futures.append(runtime.submit_ridge(a, b, 0.1))
    session = runtime.open_stream(10)
    for _ in range(3):
        rows = rng.standard_normal((64, 10))
        targets = rng.standard_normal(64)
        futures.append(runtime.append_rows(session, rows, targets))
    futures.append(runtime.query_solution(session))
    return futures, len(futures)


def test_every_admitted_request_yields_one_complete_span_tree():
    rng = np.random.default_rng(0)
    runtime = AsyncSketchServer(shards=2, seed=0, workers=2, queue_depth=64)
    try:
        futures, admitted = _mixed_load(runtime, rng)
        runtime.drain()
        for f in futures:
            assert f.exception() is None
        tracer = runtime.tracer
        assert tracer.traces_started == admitted
        assert tracer.traces_completed == admitted
        assert tracer.active_count() == 0
        traces = tracer.traces()
        assert len(traces) == admitted
        trace_ids = set()
        for root in traces:
            assert root.name == "request"
            assert root.is_complete(), f"incomplete tree for {root.trace_id}"
            assert root.status == "ok"
            assert root.attributes["lane"] in ("solve", "ridge", "stream")
            assert root.find("admission") is not None
            trace_ids.add(root.trace_id)
            for span in root.walk():
                assert span.trace_id == root.trace_id
                assert span.end is not None
                assert span.start <= span.end
        assert len(trace_ids) == admitted  # exactly one tree per request
    finally:
        runtime.stop()


def test_solve_trace_has_plan_batch_solver_and_respond_spans():
    rng = np.random.default_rng(1)
    runtime = AsyncSketchServer(shards=1, seed=0, workers=1, queue_depth=16)
    try:
        a = rng.standard_normal((256, 12))
        b = rng.standard_normal(256)
        fut = runtime.submit(a, b)
        runtime.drain()
        fut.result()
        root = runtime.tracer.traces()[-1]
        assert root.find("plan") is not None
        assert root.find("placement") is not None
        batch = root.find("batch")
        assert batch is not None
        assert batch.find("solve") is not None
        assert any(s.name.startswith("solver:") for s in batch.children)
        respond = root.find("respond")
        assert respond is not None
        assert root.end >= respond.end
    finally:
        runtime.stop()


def test_deadline_shed_gets_terminal_shed_span():
    rng = np.random.default_rng(2)
    runtime = AsyncSketchServer(shards=1, seed=0, workers=1, queue_depth=16)
    try:
        a = rng.standard_normal((512, 16))
        b = rng.standard_normal(512)
        fut = runtime.submit(a, b, latency_budget=1e-12)
        runtime.drain()
        assert fut.shed
        with pytest.raises(DeadlineExceededError):
            fut.result()
        root = runtime.tracer.traces()[-1]
        assert root.status == "shed"
        assert root.is_complete()
        shed = root.find("shed")
        assert shed is not None
        assert shed.status == "shed"
        assert shed.attributes["reason"] == "deadline"
        assert shed.duration == 0.0  # terminal event, not an interval
    finally:
        runtime.stop()


def test_shutdown_backlog_shed_ends_every_pending_trace():
    rng = np.random.default_rng(3)
    runtime = AsyncSketchServer(shards=1, seed=0, workers=1, queue_depth=32)
    runtime.pause()
    futures = []
    for _ in range(4):
        a = rng.standard_normal((128, 8))
        b = rng.standard_normal(128)
        futures.append(runtime.submit(a, b))
    a = rng.standard_normal((128, 8))
    futures.append(runtime.submit_ridge(a, rng.standard_normal(128), 0.5))
    runtime.stop(drain=False)
    for fut in futures:
        assert isinstance(fut.exception(), AdmissionError)
    tracer = runtime.tracer
    assert tracer.traces_completed == len(futures)
    for root in tracer.traces():
        assert root.status == "shed"
        assert root.find("shed").attributes["reason"] == "shutdown"
        assert root.is_complete()


def test_sync_server_traces_too():
    rng = np.random.default_rng(4)
    server = SketchServer(ServerConfig(shards=2, seed=0, max_batch=4))
    for _ in range(6):
        a = rng.standard_normal((256, 12))
        b = rng.standard_normal(256)
        server.submit(a, b)
    server.flush()
    assert server.tracer.traces_completed == 6
    assert server.stats()["traces_completed"] == 6.0
    for root in server.tracer.traces():
        assert root.is_complete()
        assert root.find("batch") is not None
        assert root.find("respond") is not None


def test_tracing_disabled_serves_identically_with_no_traces():
    rng = np.random.default_rng(5)
    a = rng.standard_normal((256, 12))
    b = rng.standard_normal(256)
    on = SketchServer(ServerConfig(shards=1, seed=0, tracing=True))
    off = SketchServer(ServerConfig(shards=1, seed=0, tracing=False))
    r_on = on.solve(a, b)
    r_off = off.solve(a, b)
    np.testing.assert_allclose(r_off.x, r_on.x)
    assert off.tracer.traces() == []
    assert off.tracer.traces_started == 0
    assert on.tracer.traces_completed == 1


def test_sampled_tracing_keeps_counters_and_span_tree_invariants():
    """trace_sample=N retains 1-in-N traces; every retained tree is complete.

    The started == completed == admitted invariant is about *counters*, not
    retention -- sampling must not break it.
    """
    rng = np.random.default_rng(8)
    runtime = AsyncSketchServer(
        shards=2, seed=0, workers=2, queue_depth=64, trace_sample=4
    )
    try:
        futures, admitted = _mixed_load(runtime, rng)
        runtime.drain()
        for f in futures:
            assert f.exception() is None
        tracer = runtime.tracer
        assert tracer.traces_started == admitted
        assert tracer.traces_completed == admitted
        assert tracer.active_count() == 0
        traces = tracer.traces()
        # 1-in-4 head sampling on an all-ok run retains about a quarter.
        assert 0 < len(traces) < admitted
        assert tracer.traces_retained == len(traces)
        for root in traces:
            assert root.name == "request"
            assert root.is_complete(), f"incomplete tree for {root.trace_id}"
            assert root.status == "ok"
            assert root.find("admission") is not None
            for span in root.walk():
                assert span.trace_id == root.trace_id
                assert span.end is not None
                assert span.start <= span.end
    finally:
        runtime.stop()


def test_sampling_always_retains_shed_traces():
    rng = np.random.default_rng(9)
    # sample_every far above the workload size: only the override can
    # retain anything past the first root.
    runtime = AsyncSketchServer(
        shards=1, seed=0, workers=1, queue_depth=16, trace_sample=1000
    )
    try:
        ok_futures = []
        for _ in range(4):
            a = rng.standard_normal((256, 12))
            ok_futures.append(runtime.submit(a, rng.standard_normal(256)))
        runtime.drain()
        a = rng.standard_normal((512, 16))
        shed_future = runtime.submit(a, rng.standard_normal(512), latency_budget=1e-12)
        runtime.drain()
        assert shed_future.shed
        tracer = runtime.tracer
        assert tracer.traces_completed == 5
        statuses = [root.status for root in tracer.traces()]
        # The first ok trace is the 1-in-N keep; the shed one is kept by
        # the status override despite losing the sampling draw.
        assert statuses.count("shed") == 1
        assert len(statuses) < 5
    finally:
        runtime.stop()


def test_trace_sample_validation():
    with pytest.raises(ValueError):
        ServerConfig(trace_sample=0)
    with pytest.raises(ValueError):
        ServerConfig(calibration="shadow")


def test_cache_events_land_in_metrics_registry():
    rng = np.random.default_rng(6)
    server = SketchServer(ServerConfig(shards=1, seed=0))
    a = rng.standard_normal((256, 12))
    server.solve(a, rng.standard_normal(256))
    server.solve(a, rng.standard_normal(256))  # same operator: cache hit
    events = {
        tuple(c.labels.items())[0][1]: c.value
        for c in server.metrics.series("serving_cache_events_total")
    }
    assert events.get("store", 0) >= 1
    assert events.get("miss", 0) >= 1
    assert events.get("hit", 0) >= 1


def test_snapshot_contract_keys_survive_registry_refactor():
    rng = np.random.default_rng(7)
    runtime = AsyncSketchServer(shards=2, seed=0, workers=2, queue_depth=64)
    try:
        futures, _ = _mixed_load(runtime, rng)
        runtime.drain()
        for f in futures:
            f.exception()
        snap = runtime.telemetry.snapshot()
    finally:
        runtime.stop()
    for key in (
        "requests_served",
        "batches_executed",
        "mean_batch_size",
        "requests_admitted",
        "lane_solve_p95_seconds",
        "lane_ridge_p95_seconds",
        "lane_stream_p95_seconds",
        "stream_rows_ingested",
        "stream_resolves",
    ):
        assert key in snap, f"snapshot() lost contract key {key!r}"
    assert snap["requests_served"] >= 12.0


def test_stream_recorders_and_reset_are_lock_safe():
    """Satellite regression: concurrent stream recording vs reset never races."""
    telemetry = ServingTelemetry()
    stop = threading.Event()
    errors: list = []

    def hammer():
        try:
            while not stop.is_set():
                telemetry.record_stream_ingest(64, 1e-4)
                telemetry.record_stream_resolve(1, 2e-4)
                telemetry.record_stream_drift()
                telemetry.record_stream_query(32)
        except Exception as exc:  # pragma: no cover - the failure being tested
            errors.append(exc)

    def resetter():
        try:
            for _ in range(200):
                telemetry.reset()
        except Exception as exc:  # pragma: no cover - the failure being tested
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(3)]
    threads.append(threading.Thread(target=resetter))
    for t in threads:
        t.start()
    threads[-1].join()
    stop.set()
    for t in threads[:-1]:
        t.join()
    assert errors == []
    # The counters still work after the storm.
    telemetry.record_stream_ingest(10, 1e-5)
    assert telemetry.stream_rows >= 10
