"""Paper-claim regression tests at the paper's own problem sizes (analytic cost model).

Each test pins one quantitative or qualitative claim from the paper to the
simulated cost model, so any calibration change that breaks the reproduced
story is caught immediately.  The numeric-accuracy claims are covered by the
integration and figure tests; these are purely about the performance shape.
"""

import pytest

from repro.core.countsketch import CountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.gpu.executor import GPUExecutor
from repro.harness.experiments import figure2, figure3, figure5, headline_speedup
from repro.harness.runner import SweepConfig


@pytest.fixture(scope="module")
def fig2_rows():
    cfg = SweepConfig(scale="paper", repetitions=1)
    return figure2(cfg)


@pytest.fixture(scope="module")
def fig5_rows():
    cfg = SweepConfig(scale="paper", repetitions=1)
    return figure5(cfg)


def _by_key(rows, value="total_seconds"):
    return {(r["d"], r["n"], r["method"]): r[value] for r in rows if not r["oom"]}


class TestSection62SketchPerformance:
    def test_countsketch_beats_gram_for_wide_matrices_everywhere(self, fig2_rows):
        """'For sufficiently wide matrices, the CountSketch implementation provides a
        considerable speedup compared to computing the Gram matrix.'"""
        t = _by_key(fig2_rows)
        for d in (1 << 21, 1 << 22):
            assert t[(d, 256, "Count (Alg 2)")] < t[(d, 256, "Gram")]
            assert t[(d, 128, "Multi")] < 1.1 * t[(d, 128, "Gram")]

    def test_algorithm2_always_beats_spmm(self, fig2_rows):
        t = _by_key(fig2_rows)
        for (d, n, method), secs in t.items():
            if method == "Count (Alg 2)":
                assert secs < t[(d, n, "Count (SPMM)")]

    def test_multisketch_overhead_over_countsketch_is_small(self, fig2_rows):
        """'The multisketch technique adds minimal overhead to the CountSketch.'"""
        t = _by_key(fig2_rows)
        for (d, n, method), secs in t.items():
            if method == "Multi":
                assert secs < 1.6 * t[(d, n, "Count (Alg 2)")]

    def test_gaussian_slower_than_gram(self, fig2_rows):
        """'The application of a Gaussian sketch is noticeably slower than computing
        the Gram matrix.'"""
        t = _by_key(fig2_rows)
        for (d, n, method), secs in t.items():
            if method == "Gauss":
                assert secs > t[(d, n, "Gram")]

    def test_srht_not_competitive_with_countsketch(self, fig2_rows):
        t = _by_key(fig2_rows)
        for (d, n, method), secs in t.items():
            if method == "SRHT":
                assert secs > t[(d, n, "Count (Alg 2)")]
                assert secs > t[(d, n, "Multi")]


class TestFigure3Throughput:
    def test_achieved_bandwidth_bands(self, fig2_rows):
        cfg = SweepConfig(scale="paper", repetitions=1)
        rows = figure3(cfg, rows=fig2_rows)
        for r in rows:
            if r["oom"]:
                continue
            pct = r["percent_peak_bandwidth"]
            if r["method"] == "Count (Alg 2)":
                assert 40 <= pct <= 65  # paper: 50-60%
            elif r["method"] == "Count (SPMM)":
                assert pct <= 30  # paper: ~20%
            elif r["method"] == "SRHT":
                assert 50 <= pct <= 80  # paper: 60-70%


class TestSection63LeastSquares:
    def test_multisketch_beats_normal_equations_for_wide_problems(self, fig5_rows):
        t = _by_key(fig5_rows)
        for d in (1 << 21, 1 << 22):
            assert t[(d, 256, "Multi")] < t[(d, 256, "Normal Eq")]

    def test_normal_equations_win_for_narrow_problems(self, fig5_rows):
        """The crossover: sketching does not pay off for very small n."""
        t = _by_key(fig5_rows)
        assert t[(1 << 21, 32, "Normal Eq")] < t[(1 << 21, 32, "Multi")]

    def test_countsketch_pays_geqrf_penalty_at_wide_n(self, fig5_rows):
        """'The CountSketch ... takes a large performance hit during the GEQRF phase.'"""
        t = _by_key(fig5_rows)
        assert t[(1 << 22, 256, "Count")] > t[(1 << 22, 256, "Multi")]

    def test_rand_cholqr_slowest_randomized_solver_but_faster_than_gauss(self, fig5_rows):
        t = _by_key(fig5_rows)
        for d in (1 << 21, 1 << 22):
            assert t[(d, 128, "rand_cholQR")] > t[(d, 128, "Multi")]
            assert t[(d, 128, "rand_cholQR")] < t[(d, 128, "Gauss")]

    def test_headline_speedup_location_and_magnitude(self, fig5_rows):
        """'Up to 77% faster than the normal equations (d = 2^22, n = 256).'

        The simulated model reproduces the location of the best case and a
        speedup of the same order (we accept 40%-150%).
        """
        best = headline_speedup(fig5_rows)
        assert best["d"] == 1 << 22
        assert best["n"] == 256
        assert 0.4 <= best["speedup"] <= 1.5


class TestSection61ImplementationChoices:
    def test_transpose_trick_saves_time(self):
        d, n = 1 << 22, 256
        ex1 = GPUExecutor(numeric=False, track_memory=False)
        count_gauss(d, n, executor=ex1, seed=1, transpose_trick=True).apply(ex1.empty((d, n)))
        ex2 = GPUExecutor(numeric=False, track_memory=False)
        count_gauss(d, n, executor=ex2, seed=1, transpose_trick=False).apply(ex2.empty((d, n)))
        assert ex1.elapsed < ex2.elapsed

    def test_countsketch_generation_negligible_next_to_gaussian(self):
        d, n = 1 << 22, 128
        ex = GPUExecutor(numeric=False, track_memory=False)
        CountSketch(d, 2 * n * n, executor=ex, seed=1).generate()
        count_gen = ex.elapsed
        ex2 = GPUExecutor(numeric=False, track_memory=False)
        GaussianSketch(d, 2 * n, executor=ex2, seed=1).generate()
        gauss_gen = ex2.elapsed
        assert count_gen < 0.01 * gauss_gen

    def test_srht_memory_traffic_grows_with_log_d(self):
        """Table 1: the SRHT moves O(d n log d) bytes versus O(d n) for the CountSketch."""
        n = 64
        ratios = []
        for d in (1 << 18, 1 << 22):
            ex = GPUExecutor(numeric=False, track_memory=False)
            SRHT(d, 2 * n, executor=ex, seed=1).apply(ex.empty((d, n)))
            srht_bytes = ex.breakdown().total_bytes()
            ex2 = GPUExecutor(numeric=False, track_memory=False)
            CountSketch(d, 2 * n * n, executor=ex2, seed=1).apply(ex2.empty((d, n)))
            count_bytes = ex2.breakdown().total_bytes()
            ratios.append(srht_bytes / count_bytes)
        assert ratios[1] > ratios[0] >= 1.5
