"""End-to-end integration tests across the whole library.

These exercise the flows a downstream user follows (public API only) and the
cross-cutting paper claims that involve several subsystems at once.
"""

import numpy as np
import pytest

import repro
from repro import (
    CountSketch,
    GPUExecutor,
    GaussianSketch,
    SRHT,
    count_gauss,
    normal_equations,
    qr_solve,
    rand_cholqr,
    rand_cholqr_lstsq,
    sketch_and_solve,
)
from repro.distributed import BlockRowMatrix, SimComm, distributed_multisketch
from repro.linalg.conditioning import matrix_with_condition
from repro.workloads import easy_problem, hard_problem


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_module_docstring(self):
        a = np.random.default_rng(0).standard_normal((8192, 32))
        b = a @ np.ones(32)
        sketch = count_gauss(d=a.shape[0], n=a.shape[1], seed=1)
        result = sketch_and_solve(a, b, sketch)
        assert result.relative_residual < 1e-8
        assert result.total_seconds > 0

    def test_host_level_matmul_interface(self):
        a = np.random.default_rng(1).standard_normal((4096, 8))
        for sketch in (
            CountSketch(4096, 128, seed=1),
            GaussianSketch(4096, 16, seed=2),
            SRHT(4096, 16, seed=3),
        ):
            y = sketch @ a
            assert y.shape == (sketch.k, 8)


class TestSolverAgreement:
    """All exact solvers agree; sketched solvers agree up to the O(1) factor."""

    def test_all_solvers_on_one_problem(self):
        problem = easy_problem(8192, 32, seed=3)
        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        ne = normal_equations(problem.a, problem.b, executor=ex)
        qr = qr_solve(problem.a, problem.b, executor=ex)
        rc = rand_cholqr_lstsq(
            problem.a, problem.b, count_gauss(problem.d, problem.n, executor=ex, seed=1), executor=ex
        )
        ss = sketch_and_solve(
            problem.a, problem.b, count_gauss(problem.d, problem.n, executor=ex, seed=2), executor=ex
        )
        # Exact solvers agree to machine precision.
        np.testing.assert_allclose(ne.x, qr.x, rtol=1e-6)
        np.testing.assert_allclose(rc.x, qr.x, rtol=1e-6)
        # The sketched residual is within the distortion bound of the optimum.
        assert qr.relative_residual <= ss.relative_residual <= 1.6 * qr.relative_residual

    def test_hard_problem_residual_ordering_preserved(self):
        easy = easy_problem(4096, 16, seed=4)
        hard = hard_problem(4096, 16, seed=4)
        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        r_easy = sketch_and_solve(easy.a, easy.b, count_gauss(4096, 16, executor=ex, seed=5), executor=ex)
        r_hard = sketch_and_solve(hard.a, hard.b, count_gauss(4096, 16, executor=ex, seed=6), executor=ex)
        assert r_hard.relative_residual > r_easy.relative_residual


class TestStabilityStory:
    """Figure 8 in miniature: sketched solvers track QR, normal equations do not."""

    @pytest.mark.parametrize("cond", [1e4, 1e10])
    def test_sketch_and_solve_tracks_qr(self, cond):
        a = matrix_with_condition(4096, 16, cond, seed=5)
        b = a @ np.ones(16)
        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        qr = qr_solve(a, b, executor=ex)
        ss = sketch_and_solve(a, b, count_gauss(4096, 16, executor=ex, seed=1), executor=ex)
        assert ss.relative_residual < 1e-6
        assert qr.relative_residual < 1e-8

    def test_normal_equations_degrade(self):
        a = matrix_with_condition(4096, 16, 1e12, seed=6)
        b = a @ np.ones(16)
        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        ne = normal_equations(a, b, executor=ex)
        assert ne.failed or ne.relative_residual > 1e-7


class TestRandCholQRFactorization:
    def test_factorization_and_solver_agree(self):
        a = matrix_with_condition(8192, 32, 1e3, seed=7)
        b = a @ np.ones(32)
        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        q, r = rand_cholqr(a, count_gauss(8192, 32, executor=ex, seed=1), executor=ex)
        x_from_qr = np.linalg.solve(r.data, q.data.T @ b)
        result = rand_cholqr_lstsq(a, b, count_gauss(8192, 32, executor=ex, seed=2), executor=ex)
        np.testing.assert_allclose(x_from_qr, result.x, rtol=1e-8)


class TestDistributedIntegration:
    def test_distributed_multisketch_feeds_sketch_and_solve(self):
        """Sketch on 4 'ranks', then solve the reduced problem -- the full §7 flow."""
        d, n, p = 16384, 16, 4
        problem = easy_problem(d, n, seed=8)
        dist = BlockRowMatrix.from_global(problem.a, p)
        comm = SimComm(p)
        k1, k2 = 2 * n * n, 4 * n
        sketched = distributed_multisketch(dist, k1, k2, comm, seed=9)
        assert sketched.sketch.shape == (k2, n)

        # Sketch b with the same per-rank operators is not exposed directly;
        # verify instead that the reduced matrix is a usable embedding: solve
        # the sketched normal equations and compare against the true solution.
        y = sketched.sketch
        x_sketched, *_ = np.linalg.lstsq(y, y @ np.linalg.lstsq(problem.a, problem.b, rcond=None)[0], rcond=None)
        x_true, *_ = np.linalg.lstsq(problem.a, problem.b, rcond=None)
        np.testing.assert_allclose(x_sketched, x_true, rtol=1e-6)
        assert sketched.total_seconds > 0
        assert comm.total_bytes() > 0


class TestSimulationConsistency:
    def test_numeric_and_analytic_charge_identical_time(self):
        """The cost model must not depend on whether real data flows through it."""
        d, n = 1 << 16, 64

        def run(numeric: bool) -> float:
            ex = GPUExecutor(numeric=numeric, seed=1, track_memory=False)
            a = ex.rand.random_matrix((d, n)) if numeric else ex.empty((d, n))
            sketch = count_gauss(d, n, executor=ex, seed=2)
            mark = ex.mark()
            sketch.apply(a)
            return ex.elapsed_since(mark)

        assert run(True) == pytest.approx(run(False), rel=1e-12)

    def test_breakdown_phases_sum_to_total(self):
        problem = easy_problem(4096, 16, seed=10)
        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        result = sketch_and_solve(
            problem.a, problem.b, count_gauss(4096, 16, executor=ex, seed=1), executor=ex
        )
        assert sum(result.phase_seconds().values()) == pytest.approx(result.total_seconds)
