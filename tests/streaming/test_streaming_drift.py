"""Drift detection: residual-energy firings, condition probes, recovery.

Covers the detector in isolation (stationary streams stay quiet, injected
shifts fire after ``patience`` batches, condition jumps trigger re-plans)
and the closed loop (detector + window reset + planner re-solve recovers
accuracy on a piecewise-stationary stream while the open-loop engine
degrades), plus the stream workload generators themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming import (
    DriftDetector,
    DriftDetectorConfig,
    StreamingSolver,
)
from repro.workloads.streams import drifting_stream, piecewise_stationary_stream

N = 12


class TestDetectorUnit:
    def test_stationary_residuals_never_fire(self):
        detector = DriftDetector()
        detector.rebase(0.05)
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert detector.observe_residual(0.05 * (1 + 0.2 * rng.standard_normal())) is None
        assert detector.event_count == 0

    def test_shift_fires_after_patience(self):
        detector = DriftDetector(DriftDetectorConfig(residual_threshold=4.0, patience=2))
        detector.rebase(0.05)
        assert detector.observe_residual(1.0) is None  # first suspicious batch
        event = detector.observe_residual(1.0)  # second -> fire
        assert event is not None
        assert event.kind == "residual"
        assert event.observed == pytest.approx(1.0)
        assert detector.event_count == 1

    def test_single_outlier_is_absorbed(self):
        detector = DriftDetector(DriftDetectorConfig(patience=2))
        detector.rebase(0.05)
        assert detector.observe_residual(5.0) is None
        assert detector.observe_residual(0.05) is None  # run broken
        assert detector.observe_residual(5.0) is None  # run restarts at 1
        assert detector.event_count == 0

    def test_reference_floor_silences_numerical_noise(self):
        """Near-exact streams (residual ~ 1e-15) must not fire on 10x jitter."""
        detector = DriftDetector()
        detector.rebase(1e-15)
        assert detector.reference_residual == pytest.approx(
            detector.config.min_reference
        )
        assert detector.observe_residual(1e-14) is None
        assert detector.observe_residual(1e-14) is None
        assert detector.event_count == 0

    def test_reference_tracks_benign_movement(self):
        detector = DriftDetector(DriftDetectorConfig(ewma=0.5))
        detector.rebase(0.05)
        detector.observe_residual(0.07)
        assert detector.reference_residual == pytest.approx(0.06)

    def test_condition_probe_fires_on_kappa_jump(self, rng):
        detector = DriftDetector(DriftDetectorConfig(cond_factor=100.0))
        well = rng.standard_normal((256, N))
        assert detector.observe_sketch(well) is None  # first probe anchors
        ill = well.copy()
        ill[:, -1] = ill[:, 0] + 1e-9 * rng.standard_normal(256)
        event = detector.observe_sketch(ill)
        assert event is not None and event.kind == "conditioning"

    def test_nonfinite_warmup_observation_cannot_poison_the_reference(self):
        detector = DriftDetector()
        assert detector.observe_residual(float("nan")) is None
        assert detector.observe_residual(float("inf")) is None
        assert detector.reference_residual is None  # still unanchored
        detector.observe_residual(0.05)  # first finite observation warms it
        assert detector.reference_residual == pytest.approx(0.05)
        assert detector.observe_residual(1.0) is None
        assert detector.observe_residual(1.0) is not None  # detection still works

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftDetectorConfig(residual_threshold=0.5)
        with pytest.raises(ValueError):
            DriftDetectorConfig(patience=0)
        with pytest.raises(ValueError):
            DriftDetectorConfig(ewma=0.0)
        with pytest.raises(ValueError):
            DriftDetectorConfig(cond_factor=1.0)


class TestClosedLoop:
    def test_detector_resets_and_recovers(self):
        stream = piecewise_stationary_stream(
            N, rows_per_segment=2048, batch_size=256, seed=2
        )
        engine = StreamingSolver(N, mode="landmark", seed=0)
        for batch in stream:
            engine.ingest(batch.rows, batch.targets)
        assert engine.drift_events >= 1
        assert engine.drift_resolves >= 1
        sol = engine.solution()
        x_new = stream.segment_truths[-1]
        err = np.linalg.norm(sol.x - x_new) / np.linalg.norm(x_new)
        assert err < 0.05  # the post-reset window is pure second regime
        # The drift-triggered re-solve routed through the planner and the
        # attempted chain was recorded on the result.
        assert engine.last_result is not None
        assert "attempted" in engine.last_result.extra

    def test_open_loop_baseline_degrades(self):
        stream = piecewise_stationary_stream(
            N, rows_per_segment=2048, batch_size=256, seed=2
        )
        closed = StreamingSolver(N, mode="landmark", seed=0)
        open_loop = StreamingSolver(N, mode="landmark", seed=0, detector=False)
        for batch in stream:
            closed.ingest(batch.rows, batch.targets)
            open_loop.ingest(batch.rows, batch.targets)
        x_new = stream.segment_truths[-1]
        err_closed = np.linalg.norm(closed.solution().x - x_new) / np.linalg.norm(x_new)
        err_open = np.linalg.norm(open_loop.solution().x - x_new) / np.linalg.norm(x_new)
        assert open_loop.drift_events == 0
        assert err_open > 5 * err_closed

    def test_drift_reset_defers_resolve_until_window_is_overdetermined(self, rng):
        """Sub-``n`` batches: the post-reset window must not be solved early."""
        x_old, x_new = np.ones(N), -2.0 * np.ones(N)
        engine = StreamingSolver(N, mode="landmark", seed=0)
        small = 8  # fewer rows per batch than features
        for _ in range(6):
            rows = rng.standard_normal((small, N))
            engine.ingest(rows, rows @ x_old + 0.01 * rng.standard_normal(small))
        assert engine._solution is not None  # warmup solved the old regime
        saw_deferred_drift = False
        for _ in range(8):
            rows = rng.standard_normal((small, N))
            report = engine.ingest(rows, rows @ x_new + 0.01 * rng.standard_normal(small))
            if report.drift is not None and engine.state.rows_in_window() <= N:
                # Too few fresh rows to re-solve: no rank-deficient model
                # may be produced or served.
                assert not report.resolved
                saw_deferred_drift = True
                assert engine._solution is None
        assert saw_deferred_drift
        sol = engine.solution()  # warmup re-solved once the window grew
        err = np.linalg.norm(sol.x - x_new) / np.linalg.norm(x_new)
        assert err < 0.05

    def test_non_reset_resolves_never_adopt_out_of_regime_reference(self, rng):
        """Query / conditioning re-solves on a mixed window keep the reference."""
        config = DriftDetectorConfig(patience=100, probe_interval=0)  # no auto events
        engine = StreamingSolver(N, mode="landmark", seed=0, detector=config)
        x_old, x_new = np.ones(N), -2.0 * np.ones(N)
        for _ in range(4):
            rows = rng.standard_normal((256, N))
            engine.ingest(rows, rows @ x_old + 0.05 * rng.standard_normal(256))
        reference = engine.detector.reference_residual
        for _ in range(4):  # the window now mixes regimes
            rows = rng.standard_normal((256, N))
            engine.ingest(rows, rows @ x_new + 0.05 * rng.standard_normal(256))
        assert engine.solution().relative_residual > 4 * reference
        assert engine.detector.reference_residual == reference  # query solve
        engine._solve(trigger="drift:conditioning")  # re-plan without reset
        assert engine.detector.reference_residual == reference

    def test_reset_on_drift_can_be_disabled(self):
        stream = piecewise_stationary_stream(
            N, rows_per_segment=2048, batch_size=256, seed=2
        )
        engine = StreamingSolver(N, mode="landmark", seed=0, reset_on_drift=False)
        for batch in stream:
            engine.ingest(batch.rows, batch.targets)
        # Drift still fires and re-solves (re-plan), but the window keeps
        # all rows: no reset happened.
        assert engine.drift_events >= 1
        assert engine.state.rows_in_window() == stream.total_rows


class TestStreamGenerators:
    def test_piecewise_stream_shapes_and_change_points(self):
        stream = piecewise_stationary_stream(
            8, rows_per_segment=512, n_segments=3, batch_size=128, seed=0
        )
        assert stream.total_rows == 3 * 512
        assert stream.change_points == [512, 1024]
        assert len(stream.segment_truths) == 3
        segments = [b.segment for b in stream]
        assert segments == sorted(segments)
        for batch in stream:
            assert batch.rows.shape == (128, 8)
            assert batch.targets.shape == (128,)
            # The recorded truth explains the batch up to the noise level.
            resid = np.linalg.norm(
                batch.targets - batch.rows @ batch.x_true
            ) / np.linalg.norm(batch.targets)
            assert resid < 0.2

    def test_piecewise_truths_actually_shift(self):
        stream = piecewise_stationary_stream(8, rows_per_segment=256, seed=1)
        x0, x1 = stream.segment_truths
        assert np.linalg.norm(x1 - x0) > 0.5

    def test_explicit_truths_are_respected(self):
        truths = [np.ones(4), -np.ones(4)]
        stream = piecewise_stationary_stream(
            4, rows_per_segment=64, n_segments=2, batch_size=32, truths=truths, seed=0
        )
        np.testing.assert_array_equal(stream.segment_truths[0], truths[0])
        with pytest.raises(ValueError, match="per segment"):
            piecewise_stationary_stream(4, n_segments=3, truths=truths)

    def test_drifting_stream_rotates_continuously(self):
        stream = drifting_stream(8, total_rows=1024, batch_size=128, seed=0)
        assert stream.change_points == []
        truths = [b.x_true for b in stream]
        # Unit-norm truths that move a little every batch, a lot overall.
        for t in truths:
            assert np.linalg.norm(t) == pytest.approx(1.0, abs=1e-6)
        steps = [np.linalg.norm(b - a) for a, b in zip(truths, truths[1:])]
        assert max(steps) < 0.5
        assert np.linalg.norm(truths[-1] - truths[0]) > 1.0

    def test_window_arrays_returns_the_tail(self):
        stream = piecewise_stationary_stream(4, rows_per_segment=128, batch_size=64, seed=0)
        a, b = stream.window_arrays(100)
        assert a.shape == (100, 4)
        assert b.shape == (100,)
        np.testing.assert_array_equal(a[-64:], stream.batches[-1].rows)

    def test_bad_arguments_raise(self):
        with pytest.raises(ValueError):
            piecewise_stationary_stream(4, n_segments=0)
        with pytest.raises(ValueError):
            drifting_stream(4, total_rows=0)
