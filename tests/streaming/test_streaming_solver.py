"""StreamingSolver: window maintenance, lazy re-solves, planner routing.

These pin the engine's core contracts: every window mode recovers the
regression coefficients on a stationary stream, the sliding-window merge is
*exactly* the sketch of the window's rows (linearity of the hashed
CountSketch), re-solves happen only when the window changed, and each
re-solve routes through the PR 2 planner with the attempted chain recorded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.countsketch import StreamingCountSketch
from repro.streaming import StreamingSolver
from repro.streaming.state import (
    STREAM_CAPACITY,
    SlidingWindowState,
    make_state,
    normalize_mode,
)
from repro.theory.complexity import streaming_complexity

N = 12
BATCH = 256


def _stationary_batches(rng, n_batches, x_true, noise=0.05):
    for _ in range(n_batches):
        rows = rng.standard_normal((BATCH, N))
        yield rows, rows @ x_true + noise * rng.standard_normal(BATCH)


class TestModes:
    @pytest.mark.parametrize("mode", ["landmark", "sliding", "decay"])
    def test_stationary_stream_recovers_coefficients(self, mode, rng):
        x_true = np.linspace(-1.0, 1.0, N)
        engine = StreamingSolver(
            N, mode=mode, seed=0, detector=False, bucket_rows=1024, window_buckets=4
        )
        for rows, targets in _stationary_batches(rng, 16, x_true):
            engine.ingest(rows, targets)
        sol = engine.solution()
        assert sol.x is not None
        err = np.linalg.norm(sol.x - x_true) / np.linalg.norm(x_true)
        assert err < 0.05
        assert sol.relative_residual < 0.2
        # The re-solve went through the planner: chain + conditioning probe.
        assert sol.attempted[0] == sol.planned_solver
        assert np.isfinite(sol.cond_estimate)

    def test_sliding_window_tracks_regime_change_without_detector(self, rng):
        """A window smaller than the new regime forgets the old one on its own."""
        x_old = np.ones(N)
        x_new = -2.0 * np.ones(N)
        engine = StreamingSolver(
            N, mode="sliding", bucket_rows=512, window_buckets=2,
            seed=0, detector=False,
        )
        for rows, targets in _stationary_batches(rng, 8, x_old):
            engine.ingest(rows, targets)
        for rows, targets in _stationary_batches(rng, 8, x_new):
            engine.ingest(rows, targets)
        sol = engine.solution()
        err = np.linalg.norm(sol.x - x_new) / np.linalg.norm(x_new)
        assert err < 0.05
        # The window never grows past its configured span.
        assert sol.window_rows <= 2 * 512

    def test_decay_forgets_old_regime(self, rng):
        x_old = np.ones(N)
        x_new = -2.0 * np.ones(N)
        engine = StreamingSolver(N, mode="decay", decay=0.995, seed=0, detector=False)
        for rows, targets in _stationary_batches(rng, 8, x_old):
            engine.ingest(rows, targets)
        for rows, targets in _stationary_batches(rng, 8, x_new):
            engine.ingest(rows, targets)
        sol = engine.solution()
        err = np.linalg.norm(sol.x - x_new) / np.linalg.norm(x_new)
        assert err < 0.1


class TestLaziness:
    def test_solution_is_cached_until_window_changes(self, rng):
        engine = StreamingSolver(N, seed=0, detector=False)
        x_true = np.ones(N)
        for rows, targets in _stationary_batches(rng, 4, x_true):
            engine.ingest(rows, targets)
        first = engine.solution()
        count = engine.resolve_count
        again = engine.solution()
        assert engine.resolve_count == count  # cached, no re-solve
        assert again.staleness_rows == 0
        np.testing.assert_array_equal(first.x, again.x)

        rows = rng.standard_normal((BATCH, N))
        engine.ingest(rows, rows @ x_true)
        stale = engine.solution()
        assert engine.resolve_count == count + 1  # window changed -> re-solve
        assert stale.staleness_rows == 0

    def test_staleness_counts_rows_since_solve(self, rng):
        engine = StreamingSolver(N, seed=0, detector=False)
        x_true = np.ones(N)
        for rows, targets in _stationary_batches(rng, 2, x_true):
            engine.ingest(rows, targets)
        engine.solution()
        assert engine.staleness_rows == 0
        for rows, targets in _stationary_batches(rng, 3, x_true):
            engine.ingest(rows, targets)
        assert engine.staleness_rows == 3 * BATCH

    def test_force_resolves(self, rng):
        engine = StreamingSolver(N, seed=0, detector=False)
        rows = rng.standard_normal((2 * N, N))
        engine.ingest(rows, rows @ np.ones(N))
        engine.solution()
        count = engine.resolve_count
        engine.solution(force=True)
        assert engine.resolve_count == count + 1


class TestSlidingWindowExactness:
    def test_merged_window_equals_direct_sketch_of_window_rows(self, rng):
        """Ring merge == one sketch of exactly the window's rows (linearity)."""
        state = make_state(
            "sliding", N + 1, 256, executor=_executor(), seed=7,
            bucket_rows=1024, window_buckets=2,
        )
        blocks = [rng.standard_normal((512, N + 1)) for _ in range(6)]
        for block in blocks:
            state.fold(block, 512)
        merged = state.current()

        # Window = last 2048 rows = global indices 1024..3071 = blocks 2..5.
        reference = StreamingCountSketch(
            STREAM_CAPACITY, 256, executor=_executor(), seed=7
        )
        reference.generate()
        reference.begin(N + 1)
        for j, block in enumerate(blocks[2:], start=2):
            idx = np.arange(j * 512, (j + 1) * 512, dtype=np.int64)
            reference.update(idx, block)
        expected = reference.result().to_host()
        np.testing.assert_allclose(merged, expected, rtol=0, atol=1e-12)
        assert state.rows_in_window() == 2048

    def test_churned_accumulators_release_their_device_memory(self, rng):
        """Ring rotations, resets and query merges must not leak memory."""
        from repro.gpu.executor import GPUExecutor

        executor = GPUExecutor(numeric=True, seed=1, track_memory=True)
        state = make_state(
            "sliding", N + 1, 128, executor=executor, seed=0,
            bucket_rows=256, window_buckets=2,
        )
        state.fold(rng.standard_normal((512, N + 1)), 512)  # fill the window
        state.current()
        settled = executor.memory.in_use
        for _ in range(6):  # rotations + merges well past the window span
            state.fold(rng.standard_normal((512, N + 1)), 512)
            state.current()
        assert executor.memory.in_use == settled  # fixed-size state, no leak
        state.reset()
        assert executor.memory.in_use < settled

    def test_reset_empties_the_window(self, rng):
        state = make_state("sliding", N + 1, 128, executor=_executor(), seed=0)
        state.fold(rng.standard_normal((100, N + 1)), 100)
        assert state.rows_in_window() == 100
        version = state.version
        state.reset()
        assert state.rows_in_window() == 0
        assert state.version > version
        np.testing.assert_array_equal(state.current(), np.zeros((128, N + 1)))


class TestValidation:
    def test_fixed_policy_is_rejected(self):
        with pytest.raises(ValueError, match="planner"):
            StreamingSolver(N, policy="fixed")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            normalize_mode("bogus")
        with pytest.raises(ValueError):
            StreamingSolver(N, mode="tumbling")

    def test_wrong_row_width_rejected(self, rng):
        engine = StreamingSolver(N, seed=0)
        with pytest.raises(ValueError, match="columns"):
            engine.ingest(rng.standard_normal((4, N + 3)), np.zeros(4))
        with pytest.raises(ValueError, match="target"):
            engine.ingest(rng.standard_normal((4, N)), np.zeros(5))

    def test_empty_ingest_is_a_noop(self):
        engine = StreamingSolver(N, seed=0)
        report = engine.ingest(np.zeros((0, N)), np.zeros(0))
        assert report.rows == 0
        assert engine.state.rows_total == 0

    def test_query_on_empty_window_raises(self):
        engine = StreamingSolver(N, seed=0)
        with pytest.raises(RuntimeError, match="empty window"):
            engine.solution()

    def test_k_must_exceed_n(self):
        with pytest.raises(ValueError, match="exceed"):
            StreamingSolver(N, k=N)

    def test_unrecognized_detector_value_raises(self):
        with pytest.raises(TypeError, match="detector"):
            StreamingSolver(N, detector=1)  # truthy but not a detector


class TestOperatorRefresh:
    """Sketched factors persist across re-solves (linalg.incremental)."""

    def test_same_spec_reuses_the_operator(self):
        from repro.linalg import OperatorRefresher, SolveSpec

        executor = _executor()
        refresher = OperatorRefresher(executor)
        spec = SolveSpec(d=512, n=8, kind="multisketch", seed=0)
        first = refresher.operator_for("sketch_and_solve", spec)
        mark = executor.mark()
        again = refresher.operator_for("sketch_and_solve", spec)
        assert again is first  # no rebuild ...
        assert executor.elapsed_since(mark) == 0.0  # ... and no Sketch gen charge
        assert refresher.refreshes == 1 and refresher.reuses == 1

    def test_changed_identity_refreshes(self):
        from repro.linalg import OperatorRefresher, SolveSpec

        refresher = OperatorRefresher(_executor())
        spec = SolveSpec(d=512, n=8, kind="multisketch", seed=0)
        base = refresher.operator_for("sketch_and_solve", spec)
        other_solver = refresher.operator_for("rand_cholqr", spec)
        other_seed = refresher.operator_for(
            "sketch_and_solve", SolveSpec(d=512, n=8, kind="multisketch", seed=1)
        )
        assert other_solver is not base and other_seed is not base
        assert refresher.refreshes == 3
        refresher.invalidate()
        assert len(refresher) == 0

    def test_direct_solvers_need_no_operator(self):
        from repro.linalg import OperatorRefresher, SolveSpec

        refresher = OperatorRefresher(_executor())
        assert refresher.operator_for("qr", SolveSpec(d=512, n=8)) is None
        assert len(refresher) == 0

    def test_streaming_resolves_share_inner_operators(self, rng):
        """Two re-solves of the same window shape build factors once."""
        engine = StreamingSolver(N, seed=0, detector=False)
        x_true = np.ones(N)
        for rows, targets in _stationary_batches(rng, 2, x_true):
            engine.ingest(rows, targets)
        engine.solution()
        refreshes_after_first = engine._refresher.refreshes
        for rows, targets in _stationary_batches(rng, 2, x_true):
            engine.ingest(rows, targets)
        engine.solution()
        # Whatever the plan needed the first time was not rebuilt.
        assert engine._refresher.refreshes == refreshes_after_first


class TestComplexityAccounting:
    def test_per_batch_cost_is_stream_length_free(self):
        acc = streaming_complexity(16, 256, mode="sliding", window_buckets=4)
        assert acc["stream_length_exponent"] == 0.0
        # Update work is linear in the batch, not in anything global.
        double = streaming_complexity(16, 512, mode="sliding", window_buckets=4)
        assert double["update_arithmetic"] == pytest.approx(2 * acc["update_arithmetic"])
        # State is per-accumulator: sliding holds window_buckets of them,
        # each k x (n+1) with the default k = ceil(2 (n+1)^2) = 578.
        assert acc["state_floats"] == pytest.approx(4 * 578 * 17)

    def test_decay_pays_the_scale_pass(self):
        landmark = streaming_complexity(16, 256, mode="landmark")
        decay = streaming_complexity(16, 256, mode="decay")
        assert decay["update_arithmetic"] > landmark["update_arithmetic"]
        assert decay["state_floats"] == landmark["state_floats"]

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError):
            streaming_complexity(0, 1)
        with pytest.raises(ValueError):
            streaming_complexity(4, 4, mode="bogus")


def _executor():
    from repro.gpu.executor import GPUExecutor

    return GPUExecutor(numeric=True, seed=1, track_memory=False)
