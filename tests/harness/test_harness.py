"""Tests for the experiment harness (metrics, runner, report, experiments)."""

import math

import numpy as np
import pytest

from repro.gpu.device import H100_SXM5
from repro.gpu.timing import KernelTiming, TimeBreakdown
from repro.harness.experiments import (
    SKETCH_METHODS,
    SOLVER_METHODS,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure8,
    headline_speedup,
    section7_distributed,
    table1,
)
from repro.harness.metrics import (
    arithmetic_intensity,
    percent_of_peak_bandwidth,
    percent_of_peak_flops,
    speedup,
)
from repro.harness.report import format_table, render_breakdown_rows, render_figure_rows
from repro.harness.runner import SweepConfig, average_breakdowns, run_repeated


def _breakdown(seconds=1.0, nbytes=1e12, flops=1e12):
    b = TimeBreakdown()
    b.add(KernelTiming(name="k", seconds=seconds, bytes_moved=nbytes, flops=flops, phase="p"))
    return b


class TestMetrics:
    def test_percent_of_peak_bandwidth(self):
        b = _breakdown(seconds=1.0, nbytes=H100_SXM5.memory_bandwidth / 2)
        assert percent_of_peak_bandwidth(b, H100_SXM5) == pytest.approx(50.0)

    def test_percent_of_peak_flops(self):
        b = _breakdown(seconds=1.0, flops=H100_SXM5.peak_flops_fp64 / 4)
        assert percent_of_peak_flops(b, H100_SXM5) == pytest.approx(25.0)

    def test_zero_time_returns_zero(self):
        b = TimeBreakdown()
        assert percent_of_peak_bandwidth(b, H100_SXM5) == 0.0
        assert percent_of_peak_flops(b, H100_SXM5) == 0.0

    def test_overrides(self):
        b = _breakdown(seconds=2.0, nbytes=1.0)
        pct = percent_of_peak_bandwidth(b, H100_SXM5, bytes_moved=H100_SXM5.memory_bandwidth, seconds=1.0)
        assert pct == pytest.approx(100.0)

    def test_arithmetic_intensity(self):
        assert arithmetic_intensity(_breakdown(nbytes=10.0, flops=40.0)) == pytest.approx(4.0)
        assert arithmetic_intensity(TimeBreakdown()) == 0.0

    def test_speedup_convention(self):
        # "77% faster" == baseline / time - 1 = 0.77
        assert speedup(1.77, 1.0) == pytest.approx(0.77)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestRunner:
    def test_sweep_config_presets(self):
        paper = SweepConfig(scale="paper")
        assert paper.numeric is False
        assert max(paper.d_values) == 2**23
        quick = SweepConfig(scale="quick")
        assert quick.numeric is True

    def test_grid_truncation(self):
        cfg = SweepConfig(scale="paper")
        grid = cfg.grid()
        assert (2**23, 256) not in grid
        cfg_full = SweepConfig(scale="paper", skip_largest_n=False)
        assert (2**23, 256) in cfg_full.grid()

    def test_seed_for_is_deterministic_and_distinct(self):
        cfg = SweepConfig(scale="quick", seed=5)
        assert cfg.seed_for(100, 10, 0) == cfg.seed_for(100, 10, 0)
        assert cfg.seed_for(100, 10, 0) != cfg.seed_for(100, 10, 1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SweepConfig(scale="huge")
        with pytest.raises(ValueError):
            SweepConfig(repetitions=0)

    def test_average_breakdowns(self):
        avg = average_breakdowns([_breakdown(seconds=1.0), _breakdown(seconds=3.0)])
        assert avg.total() == pytest.approx(2.0)
        assert average_breakdowns([]).total() == 0.0

    def test_run_repeated(self):
        calls = []

        def experiment(r):
            calls.append(r)
            return _breakdown(seconds=float(r + 1))

        avg = run_repeated(experiment, 3)
        assert calls == [0, 1, 2]
        assert avg.total() == pytest.approx(2.0)
        with pytest.raises(ValueError):
            run_repeated(experiment, 0)


class TestReport:
    def test_format_table_alignment_and_nan(self):
        rows = [{"a": 1, "b": float("nan")}, {"a": 2, "b": 3.5}]
        text = format_table(rows, title="T")
        assert "T" in text and "OOM/n.a." in text and "3.5" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_render_figure_rows(self):
        rows = [
            {"d": 100, "n": 4, "method": "Gram", "total_seconds": 1.0},
            {"d": 100, "n": 4, "method": "Multi", "total_seconds": 0.5},
        ]
        text = render_figure_rows(rows, "total_seconds", scale=1e3, unit="ms")
        assert "Gram" in text and "Multi" in text and "1000" in text

    def test_render_breakdown_rows(self):
        rows = [
            {
                "d": 10,
                "n": 2,
                "method": "Normal Eq",
                "total_seconds": 2e-3,
                "phases": {"Gram matrix": 1e-3, "POTRF": 1e-3},
            }
        ]
        text = render_breakdown_rows(rows)
        assert "Gram matrix" in text and "POTRF" in text


class TestExperiments:
    """Small-sized smoke runs of every figure entry point."""

    ANALYTIC = SweepConfig(scale="paper", repetitions=1, d_values=[1 << 22], n_values=[32, 256], skip_largest_n=False)
    NUMERIC = SweepConfig(scale="quick", repetitions=1, d_values=[2048], n_values=[16], skip_largest_n=False)

    def test_table1_has_four_rows(self):
        rows = table1()
        assert len(rows) == 4
        assert {"method", "embedding_dim", "arithmetic", "read_writes", "max_distortion"} <= set(rows[0])

    def test_figure2_rows_cover_all_methods(self):
        rows = figure2(self.ANALYTIC)
        assert len(rows) == 2 * len(SKETCH_METHODS)
        methods = {r["method"] for r in rows}
        assert methods == set(SKETCH_METHODS)
        for r in rows:
            if not r["oom"]:
                assert r["total_seconds"] > 0
                assert r["total_seconds"] == pytest.approx(r["gen_seconds"] + r["apply_seconds"], rel=0.2)

    def test_figure2_shape_count_faster_than_gram_for_wide_n(self):
        rows = {(r["n"], r["method"]): r["total_seconds"] for r in figure2(self.ANALYTIC)}
        assert rows[(256, "Count (Alg 2)")] < rows[(256, "Gram")]
        assert rows[(256, "Count (Alg 2)")] < rows[(256, "Count (SPMM)")]
        assert rows[(256, "Multi")] < rows[(256, "Gram")]
        # at narrow n the Gram matrix remains competitive (the crossover of Fig. 2)
        assert rows[(32, "Gram")] < rows[(32, "Count (SPMM)")]

    def test_figure3_percentages_in_range_and_ordered(self):
        f2 = figure2(self.ANALYTIC)
        rows = {(r["n"], r["method"]): r for r in figure3(self.ANALYTIC, rows=f2)}
        for r in rows.values():
            if not r["oom"]:
                assert 0 <= r["percent_peak_bandwidth"] <= 100
        # Figure 3's story: Alg 2 achieves far better bandwidth than SpMM.
        assert (
            rows[(256, "Count (Alg 2)")]["percent_peak_bandwidth"]
            > 2 * rows[(256, "Count (SPMM)")]["percent_peak_bandwidth"]
        )
        assert 40 <= rows[(256, "Count (Alg 2)")]["percent_peak_bandwidth"] <= 65

    def test_figure4_gemm_methods_have_high_flop_fraction(self):
        f2 = figure2(self.ANALYTIC)
        rows = {(r["n"], r["method"]): r for r in figure4(self.ANALYTIC, rows=f2)}
        assert rows[(256, "Gram")]["percent_peak_flops"] > 30
        assert rows[(256, "Count (Alg 2)")]["percent_peak_flops"] < 5

    def test_figure5_rows_and_headline(self):
        cfg = SweepConfig(scale="paper", repetitions=1, d_values=[1 << 22], n_values=[256], skip_largest_n=False)
        rows = figure5(cfg)
        assert {r["method"] for r in rows} == set(SOLVER_METHODS)
        times = {r["method"]: r["total_seconds"] for r in rows}
        assert times["Multi"] < times["Normal Eq"]
        assert times["rand_cholQR"] > times["Multi"]
        best = headline_speedup(rows)
        assert best["d"] == 1 << 22 and best["n"] == 256
        assert 0.3 < best["speedup"] < 2.0

    def test_figure6_residuals_finite_and_proportional(self):
        rows = figure6(self.NUMERIC)
        by_method = {r["method"]: r["relative_residual"] for r in rows}
        assert all(np.isfinite(v) for v in by_method.values())
        # sketch-and-solve within a small factor of the true residual
        assert by_method["Multi"] <= 2.0 * by_method["QR"]
        assert by_method["Normal Eq"] == pytest.approx(by_method["QR"], rel=1e-6)

    def test_figure8_normal_equations_fail_but_sketches_survive(self):
        rows = figure8(cond_values=[1e2, 1e10], d=2048, n=8, seed=1)
        res = {(r["cond"], r["method"]): r for r in rows}
        # At kappa = 1e10 the normal equations have failed or lost all accuracy...
        ne = res[(1e10, "Normal Eq")]
        assert ne["failed"] or ne["relative_residual"] > 1e-6
        # ...while the sketched solvers and QR stay accurate.
        assert res[(1e10, "Multi")]["relative_residual"] < 1e-6
        assert res[(1e10, "QR")]["relative_residual"] < 1e-6

    def test_section7_distributed_table(self):
        rows = section7_distributed(d=1 << 20, n=64, p_values=(2, 8))
        assert len(rows) == 8
        by = {(r["p"], r["method"]): r for r in rows}
        assert by[(8, "countsketch")]["message_bytes"] > by[(8, "gaussian")]["message_bytes"]
        assert by[(8, "multisketch")]["message_bytes"] == by[(8, "gaussian")]["message_bytes"]
