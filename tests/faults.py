"""Fault injectors for the durability test harness.

Small, deterministic helpers that damage checkpoint / WAL bytes the way real
storage does: a flipped bit (latent media corruption), a torn tail (crash
mid-``write``), a truncated record.  The durability tests use them to assert
the graceful-degradation contract: every injected fault ends in a *typed*
:class:`~repro.durability.codec.DurabilityError` or a clean fallback --
never a silently wrong answer.

Lives next to ``conftest.py`` so every test package can ``import faults``
(pytest puts the conftest directory on ``sys.path``).
"""

from __future__ import annotations

from repro.durability import CheckpointStore


def flip_byte(blob: bytes, index: int = -5) -> bytes:
    """Return ``blob`` with one byte XOR-flipped.

    The default index ``-5`` lands inside the payload just ahead of the
    trailing CRC32 of a :mod:`repro.durability.codec` record, so the frame
    still parses structurally but fails its checksum.
    """
    if not blob:
        raise ValueError("cannot flip a byte of an empty blob")
    mutated = bytearray(blob)
    mutated[index] ^= 0xFF
    return bytes(mutated)


def torn_tail(blob: bytes, drop: int) -> bytes:
    """Return ``blob`` with the final ``drop`` bytes missing (torn write)."""
    if drop <= 0:
        raise ValueError("drop must be positive")
    return blob[:-drop] if drop < len(blob) else b""


def corrupt_checkpoint(store: CheckpointStore, key: str, index: int = -5) -> None:
    """Flip one byte of the stored checkpoint for ``key`` in place."""
    blob = store.read_checkpoint(key)
    if blob is None:
        raise KeyError(f"no checkpoint stored for {key!r}")
    store.write_checkpoint(key, flip_byte(blob, index))


def truncate_checkpoint(store: CheckpointStore, key: str, keep: int) -> None:
    """Replace the stored checkpoint for ``key`` with its first ``keep`` bytes."""
    blob = store.read_checkpoint(key)
    if blob is None:
        raise KeyError(f"no checkpoint stored for {key!r}")
    store.write_checkpoint(key, blob[:keep])


def tear_wal_tail(store: CheckpointStore, key: str, drop: int) -> None:
    """Tear the final ``drop`` bytes off the stored WAL for ``key``.

    Models a crash partway through an ``append_wal`` ``write(2)``: the frame
    length prefix promises more bytes than the file holds.
    """
    store.write_wal(key, torn_tail(store.read_wal(key), drop))


def corrupt_wal_frame(store: CheckpointStore, key: str, index: int = -5) -> None:
    """Flip one byte inside the stored WAL for ``key`` (latent corruption)."""
    blob = store.read_wal(key)
    if not blob:
        raise KeyError(f"no WAL bytes stored for {key!r}")
    store.write_wal(key, flip_byte(blob, index))
