"""Multi-RHS (fused batch) paths of the least-squares solvers.

The serving layer's micro-batcher relies on ``sketch_and_solve`` /
``rand_cholqr_lstsq`` accepting a ``d x m`` block of right-hand sides and
producing, column for column, the same solutions as ``m`` separate
single-vector solves against the same sketch.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.core.countsketch import CountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.gpu.executor import GPUExecutor
from repro.linalg.iterative import sketch_preconditioned_lsqr
from repro.linalg.lstsq import normal_equations, qr_solve, sketch_and_solve
from repro.linalg.rand_cholqr import rand_cholqr_lstsq

D, N, M = 4096, 16, 5


def _fresh(build, seed=3):
    ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
    return build(ex, seed)


_BUILDERS = {
    "multisketch": lambda ex, s: count_gauss(D, N, executor=ex, seed=s),
    "gaussian": lambda ex, s: GaussianSketch(D, 2 * N, executor=ex, seed=s),
    "countsketch": lambda ex, s: CountSketch(D, 2 * N * N, executor=ex, seed=s),
    "srht": lambda ex, s: SRHT(D, 2 * N, executor=ex, seed=s),
}


@pytest.fixture
def block_problem(rng):
    a = rng.standard_normal((D, N))
    b = rng.standard_normal((D, M))
    return a, b


class TestSketchAndSolveBatched:
    @pytest.mark.parametrize("kind", list(_BUILDERS))
    def test_matches_columnwise_solves(self, block_problem, kind):
        a, b = block_problem
        batched = sketch_and_solve(a, b, _fresh(_BUILDERS[kind]))
        reference = _fresh(_BUILDERS[kind])
        cols = np.column_stack(
            [sketch_and_solve(a, b[:, j], reference).x for j in range(M)]
        )
        assert batched.x.shape == (N, M)
        np.testing.assert_allclose(batched.x, cols, rtol=1e-9, atol=1e-11)

    def test_result_metadata(self, block_problem):
        a, b = block_problem
        result = sketch_and_solve(a, b, _fresh(_BUILDERS["multisketch"]))
        assert result.nrhs == M
        assert result.extra["nrhs"] == float(M)
        assert result.column_residuals.shape == (M,)
        # the aggregate (Frobenius) residual is bounded by the worst column
        assert result.relative_residual <= result.column_residuals.max() + 1e-12

    def test_single_rhs_unchanged(self, block_problem):
        a, b = block_problem
        result = sketch_and_solve(a, b[:, 0], _fresh(_BUILDERS["multisketch"]))
        assert result.x.ndim == 1
        assert result.nrhs == 1
        assert result.column_residuals is None

    def test_batch_amortises_simulated_time(self, block_problem):
        """m fused RHS must cost far less than m separate solves."""
        a, b = block_problem
        batched = sketch_and_solve(a, b, _fresh(_BUILDERS["multisketch"]))
        single = sketch_and_solve(a, b[:, 0], _fresh(_BUILDERS["multisketch"]))
        assert batched.total_seconds < 0.75 * M * single.total_seconds


class TestRandCholQRBatched:
    def test_matches_columnwise_solves(self, block_problem):
        a, b = block_problem
        batched = rand_cholqr_lstsq(a, b, _fresh(_BUILDERS["multisketch"]))
        reference = _fresh(_BUILDERS["multisketch"])
        cols = np.column_stack(
            [rand_cholqr_lstsq(a, b[:, j], reference).x for j in range(M)]
        )
        np.testing.assert_allclose(batched.x, cols, rtol=1e-9, atol=1e-11)

    def test_no_distortion_on_consistent_block(self, rng):
        a = rng.standard_normal((D, N))
        x_true = rng.standard_normal((N, M))
        b = a @ x_true
        result = rand_cholqr_lstsq(a, b, _fresh(_BUILDERS["multisketch"]))
        np.testing.assert_allclose(result.x, x_true, rtol=1e-8, atol=1e-8)
        assert result.column_residuals.max() < 1e-10


class TestSketchPrecondLSQRBatched:
    """The fused multi-RHS path of the iterative solver (PR 2 tentpole)."""

    def test_matches_columnwise_solves(self, block_problem):
        a, b = block_problem
        batched = sketch_preconditioned_lsqr(a, b, _fresh(_BUILDERS["multisketch"]))
        reference = _fresh(_BUILDERS["multisketch"])
        cols = np.column_stack(
            [sketch_preconditioned_lsqr(a, b[:, j], reference).x for j in range(M)]
        )
        assert batched.x.shape == (N, M)
        np.testing.assert_allclose(batched.x, cols, rtol=1e-6, atol=1e-8)

    def test_result_metadata_and_convergence(self, block_problem):
        a, b = block_problem
        result = sketch_preconditioned_lsqr(a, b, _fresh(_BUILDERS["multisketch"]))
        assert result.nrhs == M
        assert result.extra["nrhs"] == float(M)
        assert result.extra["converged"] == 1.0
        assert result.column_residuals.shape == (M,)

    def test_no_distortion_on_consistent_block(self, rng):
        a = rng.standard_normal((D, N))
        x_true = rng.standard_normal((N, M))
        result = sketch_preconditioned_lsqr(a, a @ x_true, _fresh(_BUILDERS["multisketch"]))
        np.testing.assert_allclose(result.x, x_true, rtol=1e-7, atol=1e-7)
        assert result.column_residuals.max() < 1e-8

    def test_batch_amortises_simulated_time(self, block_problem):
        """Each LSQR pass over A is one GEMM for the whole block, so m fused
        RHS must cost far less than m separate iterative solves."""
        a, b = block_problem
        batched = sketch_preconditioned_lsqr(a, b, _fresh(_BUILDERS["multisketch"]))
        single = sketch_preconditioned_lsqr(a, b[:, 0], _fresh(_BUILDERS["multisketch"]))
        assert batched.total_seconds < 0.75 * M * single.total_seconds

    def test_analytic_mode_charges_block_iterations(self):
        ex = GPUExecutor(numeric=False, seed=0, track_memory=False)
        sketch = count_gauss(D, N, executor=ex, seed=1)
        a = ex.empty((D, N), label="A")
        b = ex.empty((D, M), label="B")
        result = sketch_preconditioned_lsqr(a, b, sketch)
        assert result.extra["nrhs"] == float(M)
        assert result.total_seconds > 0


class TestDirectSolversBatched:
    """normal_equations / qr_solve honour the same fused contract."""

    def test_normal_equations_matches_columnwise(self, block_problem):
        a, b = block_problem
        batched = normal_equations(a, b)
        cols = np.column_stack([normal_equations(a, b[:, j]).x for j in range(M)])
        np.testing.assert_allclose(batched.x, cols, rtol=1e-9, atol=1e-11)
        assert batched.nrhs == M
        assert batched.column_residuals.shape == (M,)

    def test_qr_solve_matches_columnwise(self, block_problem):
        a, b = block_problem
        batched = qr_solve(a, b)
        cols = np.column_stack([qr_solve(a, b[:, j]).x for j in range(M)])
        np.testing.assert_allclose(batched.x, cols, rtol=1e-9, atol=1e-11)
        assert batched.column_residuals.shape == (M,)


class TestTrsmLeft:
    def test_solves_upper_triangular_block(self, executor, rng):
        n, m = 12, 4
        r = np.triu(rng.standard_normal((n, n))) + 5.0 * np.eye(n)
        b = rng.standard_normal((n, m))
        r_dev = executor.to_device(r, label="R")
        b_dev = executor.to_device(b, label="B")
        x = executor.solver.trsm_left(r_dev, b_dev).to_host()
        np.testing.assert_allclose(x, sla.solve_triangular(r, b), rtol=1e-12)

    def test_transpose_flag(self, executor, rng):
        n, m = 12, 4
        r = np.triu(rng.standard_normal((n, n))) + 5.0 * np.eye(n)
        b = rng.standard_normal((n, m))
        r_dev = executor.to_device(r, label="R")
        b_dev = executor.to_device(b, label="B")
        x = executor.solver.trsm_left(r_dev, b_dev, transpose=True).to_host()
        np.testing.assert_allclose(r.T @ x, b, rtol=1e-10, atol=1e-12)

    def test_shape_validation(self, executor, rng):
        r_dev = executor.to_device(np.eye(4), label="R")
        with pytest.raises(ValueError):
            executor.solver.trsm_left(r_dev, executor.to_device(np.zeros(4), label="v"))
        with pytest.raises(ValueError):
            executor.solver.trsm_left(r_dev, executor.to_device(np.zeros((5, 2)), label="B"))

    def test_charges_triangular_kernel(self, analytic_executor):
        r = analytic_executor.empty((8, 8), label="R")
        b = analytic_executor.empty((8, 3), label="B")
        before = analytic_executor.elapsed
        analytic_executor.solver.trsm_left(r, b)
        assert analytic_executor.elapsed > before


class TestCacheKeys:
    def test_same_seed_operators_share_cache_key(self):
        op1 = _fresh(_BUILDERS["multisketch"], seed=3)
        op2 = _fresh(_BUILDERS["multisketch"], seed=3)
        assert op1.cache_key() == op2.cache_key()

    def test_seed_and_variant_change_the_key(self):
        base = _fresh(_BUILDERS["countsketch"], seed=3)
        other_seed = _fresh(_BUILDERS["countsketch"], seed=4)
        assert base.cache_key() != other_seed.cache_key()
        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        spmm = CountSketch(D, 2 * N * N, variant="spmm", executor=ex, seed=3)
        assert base.cache_key() != spmm.cache_key()

    def test_unseeded_operator_key_is_unique(self):
        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        op1 = GaussianSketch(D, 2 * N, executor=ex)
        op2 = GaussianSketch(D, 2 * N, executor=ex)
        assert op1.cache_key() != op2.cache_key()

    def test_block_srht_key_includes_partition(self):
        from repro.core.srht import BlockSRHT

        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        two = BlockSRHT(1024, 16, n_blocks=2, executor=ex, seed=5)
        four = BlockSRHT(1024, 16, n_blocks=4, executor=ex, seed=5)
        assert two.cache_key() != four.cache_key()
