"""Golden regression tests locking the planner's fallback chains.

Refactors of the registry/planner must not silently reorder the fallback
chains: the chain order *is* the robustness contract (a breakdown has just
disproved the conditioning estimate, so each next link must be strictly
more robust, ending at the exact-QR solver of record).  These tests pin
the exact planned chains and the exact executed ``attempted_solvers``
sequences for both problem classes on ill-conditioned inputs, with seeded
matrices and seeded probes so the goldens are bit-stable.

If a deliberate planner change alters a chain, update the golden here *in
the same commit* and say why in the commit message.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.linalg.conditioning import matrix_with_condition
from repro.linalg.planner import plan, plan_and_execute
from repro.workloads.ridge import make_ridge_problem

D, N = 1 << 16, 64
SCALE = math.sqrt(float(D) * N)

pytestmark = pytest.mark.planner


def _lstsq_problem(cond: float, seed: int):
    a = matrix_with_condition(D, N, cond, seed=seed) * SCALE
    return a, a @ np.ones(N)


class TestLeastSquaresGoldenChains:
    def test_easy_problem_chain_is_locked(self):
        a, b = _lstsq_problem(1e3, seed=2)
        plan_ = plan(a, policy="cheapest_accurate", accuracy_target=1e-6, seed=0)
        assert plan_.chain == (
            "normal_equations",
            "rand_cholqr",
            "qr",
            "sketch_precond_lsqr",
        )
        result = plan_and_execute(
            a, b, policy="cheapest_accurate", accuracy_target=1e-6, seed=0
        )
        assert result.attempted_solvers == ("normal_equations",)
        assert not result.failed

    def test_ill_conditioned_chain_is_locked(self):
        # kappa ~ 1e10: the probe excludes the normal equations outright and
        # the distortion-bearing sketch-and-solve never joins a chain.
        a, b = _lstsq_problem(1e10, seed=2)
        plan_ = plan(a, policy="cheapest_accurate", accuracy_target=1e-6, seed=0)
        assert plan_.chain == ("rand_cholqr", "qr", "sketch_precond_lsqr")
        result = plan_and_execute(
            a, b, policy="cheapest_accurate", accuracy_target=1e-6, seed=0
        )
        assert result.attempted_solvers == ("rand_cholqr",)
        assert not result.failed
        assert result.relative_residual < 1e-6

    def test_potrf_breakdown_rescue_sequence_is_locked(self):
        # An optimistic conditioning estimate routes the normal equations
        # first; the POTRF breakdown on the kappa~1e10 matrix must walk to
        # rand_cholQR -- exactly this sequence, nothing reordered.
        a, b = _lstsq_problem(1e10, seed=4)
        plan_ = plan(
            a, policy="cheapest_accurate", accuracy_target=1e-6,
            cond_estimate=1e3, seed=0,
        )
        assert plan_.chain == (
            "normal_equations",
            "rand_cholqr",
            "qr",
            "sketch_precond_lsqr",
        )
        result = plan_and_execute(
            a, b, policy="cheapest_accurate", accuracy_target=1e-6,
            cond_estimate=1e3, seed=0,
        )
        assert result.attempted_solvers == ("normal_equations", "rand_cholqr")
        assert not result.failed
        assert result.extra["fallbacks"] == 1.0
        assert result.relative_residual < 1e-8


class TestRidgeGoldenChains:
    def test_tiny_lambda_ill_conditioned_chain_is_locked(self):
        # lam far below sigma_min^2 is effectively unregularized: at the
        # probed kappa~1e10 the lambda-aware floors exclude the ridge
        # normal equations and the chain starts at the solver of record.
        p = make_ridge_problem(4096, 32, cond=1e10, lam_rel=1e-14, seed=5)
        plan_ = plan(
            p.a, regularization=p.lam, policy="cheapest_accurate",
            accuracy_target=1e-8, seed=0,
        )
        assert plan_.chain == ("ridge_qr", "ridge_precond_lsqr")
        result = plan_and_execute(
            p.a, p.b, regularization=p.lam, policy="cheapest_accurate",
            accuracy_target=1e-8, seed=0,
        )
        assert result.attempted_solvers == ("ridge_qr",)
        assert not result.failed

    def test_ridge_breakdown_rescue_sequence_is_locked(self):
        # Optimistic claimed conditioning admits ridge_normal_equations;
        # the Gram+lam*I POTRF breaks on the kappa~1e12 / lam~1e-20 system
        # and the rescue must go to ridge_qr -- this exact sequence.
        p = make_ridge_problem(D, N, cond=1e12, lam_rel=1e-20, seed=4)
        plan_ = plan(
            p.a, regularization=p.lam, policy="cheapest_accurate",
            accuracy_target=1e-8, cond_estimate=1e2, smax_estimate=p.smax, seed=0,
        )
        assert plan_.chain == (
            "ridge_normal_equations",
            "ridge_qr",
            "ridge_precond_lsqr",
        )
        result = plan_and_execute(
            p.a, p.b, regularization=p.lam, policy="cheapest_accurate",
            accuracy_target=1e-8, cond_estimate=1e2, smax_estimate=p.smax, seed=0,
        )
        assert result.attempted_solvers == ("ridge_normal_equations", "ridge_qr")
        assert not result.failed
        assert result.extra["fallbacks"] == 1.0
