"""Planner: condition probing, policy routing, fallback-chain execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.conditioning import (
    condition_number,
    estimate_condition,
    matrix_with_condition,
)
from repro.linalg.planner import (
    POLICIES,
    SolvePlan,
    execute_plan,
    normalize_policy,
    plan,
    plan_and_execute,
)
from repro.linalg.registry import SolveSpec

D, N = 4096, 16


class TestConditionEstimate:
    @pytest.mark.parametrize("cond", [1e2, 1e6, 1e10])
    def test_tracks_true_condition_within_a_constant(self, cond):
        a = matrix_with_condition(2048, 8, cond, seed=2)
        est = estimate_condition(a)
        assert est == pytest.approx(condition_number(a), rel=0.5)

    def test_small_matrix_falls_back_to_exact(self):
        a = matrix_with_condition(12, 8, 1e3, seed=1)
        assert estimate_condition(a) == pytest.approx(1e3, rel=1e-6)

    def test_rejects_wide_input(self, rng):
        with pytest.raises(ValueError):
            estimate_condition(rng.standard_normal((8, 64)))


class TestPolicies:
    def test_normalize(self):
        for p in POLICIES:
            assert normalize_policy(p.upper()) == p
        with pytest.raises(ValueError):
            normalize_policy("yolo")

    def test_fixed_policy_has_no_fallback(self):
        p = plan(None, SolveSpec(d=D, n=N), policy="fixed", solver="normal_eq")
        assert p.solver == "normal_equations"
        assert p.chain == ("normal_equations",)

    def test_fixed_policy_requires_solver(self):
        with pytest.raises(ValueError, match="explicit solver"):
            plan(None, SolveSpec(d=D, n=N), policy="fixed")

    def test_easy_problem_routes_away_from_qr(self):
        """At compute-bound sizes, benign conditioning picks a cheap solver."""
        spec = SolveSpec(d=1 << 17, n=64, nrhs=8, cond_estimate=100.0, accuracy_target=1e-6)
        p = plan(None, spec, policy="cheapest_accurate")
        assert p.solver == "normal_equations"
        assert p.chain[0] == "normal_equations"
        assert "qr" in p.chain  # still reachable as a fallback

    def test_hard_problem_excludes_normal_equations(self):
        spec = SolveSpec(d=1 << 17, n=64, nrhs=8, cond_estimate=1e12, accuracy_target=1e-6)
        p = plan(None, spec, policy="cheapest_accurate")
        assert p.solver != "normal_equations"
        assert "normal_equations" not in p.chain

    def test_probe_runs_when_estimate_missing(self):
        a = matrix_with_condition(D, N, 1e10, seed=3)
        p = plan(a, accuracy_target=1e-6)
        assert p.cond_estimate == pytest.approx(1e10, rel=0.5)
        assert p.solver != "normal_equations"

    def test_adaptive_prefers_robust_solver_within_budget(self):
        spec = SolveSpec(
            d=1 << 17, n=64, nrhs=8, cond_estimate=100.0,
            accuracy_target=1e-6, latency_budget=1.0,
        )
        generous = plan(None, spec, policy="adaptive")
        # Everything fits a one-second budget; the most robust exact solver
        # (flat O(u) floor) wins over the merely cheapest.
        assert generous.solver in ("qr", "rand_cholqr")

        tight = plan(
            None,
            SolveSpec(
                d=1 << 17, n=64, nrhs=8, cond_estimate=100.0,
                accuracy_target=1e-6, latency_budget=1e-12,
            ),
            policy="adaptive",
        )
        assert tight.solver == "normal_equations"  # degraded to cheapest
        assert "budget" in tight.reason

    def test_impossible_target_serves_best_effort(self):
        spec = SolveSpec(d=D, n=N, cond_estimate=1e19, accuracy_target=1e-12)
        p = plan(None, spec, policy="cheapest_accurate")
        assert p.chain[0] == "qr"  # most robust first
        assert "best-effort" in p.reason

    def test_costs_reported_for_every_solver(self):
        p = plan(None, SolveSpec(d=D, n=N, cond_estimate=10.0))
        assert set(p.costs) == {
            "normal_equations", "sketch_and_solve", "qr", "rand_cholqr",
            "sketch_precond_lsqr",
        }
        assert all(c > 0 for c in p.costs.values())

    def test_chain_must_start_with_solver(self):
        with pytest.raises(ValueError):
            SolvePlan(
                solver="qr", chain=("normal_equations",), kind="multisketch",
                embedding_dim=32, cond_estimate=1.0, policy="fixed", costs={},
            )


class TestFallbackExecution:
    def _forced_chain(self, *chain):
        return SolvePlan(
            solver=chain[0],
            chain=tuple(chain),
            kind="multisketch",
            embedding_dim=2 * N,
            cond_estimate=1e10,
            policy="cheapest_accurate",
            costs={},
        )

    def test_forced_potrf_failure_routes_to_lsqr(self):
        """The ISSUE's satellite: POTRF breakdown -> preconditioned LSQR."""
        a = matrix_with_condition(D, N, 1e10, seed=4)
        b = a @ np.ones(N)
        result = execute_plan(self._forced_chain("normal_equations", "sketch_precond_lsqr"), a, b)
        assert not result.failed
        assert result.method.startswith("blendenpik")
        assert result.attempted_solvers == ("normal_equations", "sketch_precond_lsqr")
        assert result.extra["fallbacks"] == 1.0
        # the original failure is carried, not swallowed
        assert "Cholesky" in result.failure_reason
        assert "Cholesky" in result.extra["fallback_reasons"]
        assert result.relative_residual < 1e-6

    def test_three_link_chain_walks_in_order(self):
        a = matrix_with_condition(D, N, 1e10, seed=5)
        b = a @ np.ones(N)
        result = execute_plan(
            self._forced_chain("normal_equations", "rand_cholqr", "sketch_precond_lsqr"), a, b
        )
        assert not result.failed
        assert result.attempted_solvers[:2] == ("normal_equations", "rand_cholqr")
        assert result.relative_residual < 1e-10

    def test_chain_exhaustion_keeps_last_failure(self):
        a = matrix_with_condition(D, N, 1e10, seed=6)
        b = a @ np.ones(N)
        result = execute_plan(self._forced_chain("normal_equations"), a, b)
        assert result.failed
        assert "Cholesky" in result.failure_reason
        assert result.extra["attempted"] == "normal_equations"

    def test_successful_first_link_records_no_fallback(self):
        a = matrix_with_condition(D, N, 10.0, seed=7)
        b = a @ np.ones(N)
        result = execute_plan(self._forced_chain("rand_cholqr", "qr"), a, b)
        assert result.attempted_solvers == ("rand_cholqr",)
        assert result.extra["fallbacks"] == 0.0
        assert result.failure_reason == ""

    def test_plan_and_execute_end_to_end_on_hard_problem(self):
        a = matrix_with_condition(D, N, 1e12, seed=8)
        b = a @ np.ones(N)
        result = plan_and_execute(a, b, accuracy_target=1e-8)
        assert not result.failed
        assert result.relative_residual < 1e-8
