"""Solver registry: uniform solve interface, capabilities, cost estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.executor import GPUExecutor
from repro.linalg.conditioning import matrix_with_condition
from repro.linalg.registry import (
    SolveSpec,
    UNIT_ROUNDOFF,
    available_solvers,
    canonical_solver_name,
    get_solver,
    resolve_embedding_dim,
    solve,
    solver_capabilities,
)

D, N = 4096, 16

ALL_SOLVERS = (
    "normal_equations",
    "sketch_and_solve",
    "qr",
    "rand_cholqr",
    "sketch_precond_lsqr",
)


class TestRegistry:
    def test_all_five_paper_solvers_registered(self):
        assert set(ALL_SOLVERS) <= set(available_solvers())

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("normal_eq", "normal_equations"),
            ("qr_solve", "qr"),
            ("rand_cholqr_lstsq", "rand_cholqr"),
            ("blendenpik", "sketch_precond_lsqr"),
            ("lsqr", "sketch_precond_lsqr"),
            ("sketch_preconditioned_lsqr", "sketch_precond_lsqr"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert canonical_solver_name(alias) == canonical
        assert get_solver(alias).name == canonical

    def test_unknown_solver_raises(self):
        with pytest.raises(ValueError, match="unknown solver"):
            canonical_solver_name("gradient_descent")

    def test_capability_table(self):
        caps = solver_capabilities()
        assert caps["normal_equations"].stability_exponent == 2
        assert not caps["normal_equations"].needs_sketch
        assert caps["sketch_and_solve"].distortion > 1.0
        assert caps["rand_cholqr"].distortion == 1.0
        assert caps["sketch_precond_lsqr"].iterative
        assert all(c.batched_rhs for c in caps.values())

    def test_normal_equations_floor_is_kappa_squared(self):
        caps = solver_capabilities()["normal_equations"]
        assert caps.accuracy_floor(1e4) == pytest.approx(
            caps.safety * UNIT_ROUNDOFF * 1e8
        )
        spec = SolveSpec(d=D, n=N, accuracy_target=1e-6)
        assert caps.admissible(spec, cond=1e2)
        assert not caps.admissible(spec, cond=1e6)
        # hard breakdown beyond u^{-1/2} regardless of target
        loose = SolveSpec(d=D, n=N, accuracy_target=1e30)
        assert not caps.admissible(loose, cond=1e9)

    def test_distortion_gate_excludes_sketch_and_solve(self):
        caps = solver_capabilities()["sketch_and_solve"]
        tolerant = SolveSpec(d=D, n=N, max_distortion=2.0)
        strict = SolveSpec(d=D, n=N, max_distortion=1.0)
        assert caps.admissible(tolerant, cond=10.0)
        assert not caps.admissible(strict, cond=10.0)


class TestSolveSpec:
    def test_from_problem_infers_shape_and_nrhs(self, rng):
        a = rng.standard_normal((D, N))
        b = rng.standard_normal((D, 3))
        spec = SolveSpec.from_problem(a, b, kind="gaussian")
        assert (spec.d, spec.n, spec.nrhs) == (D, N, 3)
        assert spec.embedding_dim == 2 * N

    def test_oversampling_changes_embedding_dim(self):
        assert SolveSpec(d=D, n=N, oversampling=3.0).embedding_dim == 3 * N
        assert resolve_embedding_dim("countsketch", D, N, 4.0) == min(4 * N * N, D)

    def test_validation(self):
        with pytest.raises(ValueError):
            SolveSpec(d=N, n=N)
        with pytest.raises(ValueError):
            SolveSpec(d=D, n=N, nrhs=0)
        with pytest.raises(ValueError):
            resolve_embedding_dim("gaussian", D, N, oversampling=1.0)


class TestUniformSolve:
    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_single_rhs_solves_well_conditioned_problem(self, rng, name):
        a = matrix_with_condition(D, N, 50.0, seed=1)
        x_true = np.linspace(-1, 1, N)
        b = a @ x_true
        result = get_solver(name).solve(a, b)
        assert not result.failed
        np.testing.assert_allclose(result.x, x_true, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_multi_rhs_matches_columnwise(self, rng, name):
        a = matrix_with_condition(D, N, 50.0, seed=2)
        b = rng.standard_normal((D, 3))
        spec = SolveSpec.from_problem(a, b, seed=7)
        registered = get_solver(name)
        batched = registered.solve(a, b, spec)
        assert batched.x.shape == (N, 3)
        assert batched.column_residuals.shape == (3,)
        cols = np.column_stack(
            [registered.solve(a, b[:, j], spec.with_nrhs(1)).x for j in range(3)]
        )
        np.testing.assert_allclose(batched.x, cols, rtol=1e-6, atol=1e-8)

    def test_solve_entry_point_with_fixed_solver(self, rng):
        a = matrix_with_condition(D, N, 50.0, seed=3)
        b = a @ np.ones(N)
        result = solve(a, b, solver="qr")
        assert result.method == "qr"
        assert result.relative_residual < 1e-10

    def test_solve_entry_point_plans_when_no_solver_given(self, rng):
        a = matrix_with_condition(D, N, 1e12, seed=4)
        b = a @ np.ones(N)
        result = solve(a, b, accuracy_target=1e-8)
        assert not result.failed
        assert result.relative_residual < 1e-8
        assert "attempted" in result.extra

    def test_operator_reuse_and_executor_binding(self, rng):
        from repro.serving.cache import build_operator

        ex = GPUExecutor(numeric=True, seed=0, track_memory=False)
        op = build_operator("multisketch", D, N, executor=ex, seed=5)
        a = matrix_with_condition(D, N, 50.0, seed=5)
        b = a @ np.ones(N)
        r1 = get_solver("sketch_and_solve").solve(a, b, operator=op)
        r2 = get_solver("sketch_and_solve").solve(a, b, operator=op)
        np.testing.assert_array_equal(r1.x, r2.x)


class TestCostEstimates:
    def test_dry_run_matches_numeric_charge(self):
        """The analytic estimate is the seconds a real solve is charged."""
        spec = SolveSpec(d=D, n=N, nrhs=1, seed=9)
        est = get_solver("normal_equations").estimate_seconds(spec)
        ex = GPUExecutor(numeric=True, seed=9, track_memory=False)
        a = matrix_with_condition(D, N, 10.0, seed=9)
        result = get_solver("normal_equations").solve(a, a @ np.ones(N), spec, executor=ex)
        assert result.total_seconds == pytest.approx(est, rel=1e-6)

    def test_qr_most_expensive_at_compute_bound_sizes(self):
        spec = SolveSpec(d=1 << 17, n=64, nrhs=8)
        costs = {name: get_solver(name).estimate_seconds(spec) for name in ALL_SOLVERS}
        assert costs["qr"] > costs["normal_equations"]
        assert costs["qr"] > costs["sketch_and_solve"]

    def test_estimates_are_memoised(self):
        spec = SolveSpec(d=1 << 17, n=64, nrhs=8)
        first = get_solver("qr").estimate_seconds(spec)
        assert get_solver("qr").estimate_seconds(spec) == first

    def test_apriori_flop_model_agrees_with_dry_run_ranking(self):
        """The closed-form Table-1 model (documentation / asymptotics) and
        the analytic dry-run the planner actually ranks with must agree on
        the headline ordering at paper scale: QR dearer than sketch-based
        sketch-and-solve, LSQR dearer than one direct solve."""
        spec = SolveSpec(d=1 << 20, n=128, nrhs=1)
        caps = {name: get_solver(name).capabilities for name in ALL_SOLVERS}
        apriori = {name: caps[name].cost_estimate(spec) for name in ALL_SOLVERS}
        assert apriori["qr"] > apriori["sketch_and_solve"]
        assert apriori["sketch_precond_lsqr"] > apriori["rand_cholqr"]
        flops = caps["normal_equations"].flop_estimate(spec)
        assert flops["arithmetic"] > 0 and flops["read_writes"] > 0
