"""Tests for randomized Cholesky QR (Algorithms 4-5) and Cholesky-QR helpers."""

import numpy as np
import pytest

from repro.core.multisketch import count_gauss
from repro.gpu.executor import GPUExecutor
from repro.gpu.solver import CholeskyFailedError
from repro.linalg.cholqr import cholesky_qr, cholesky_qr2
from repro.linalg.conditioning import condition_number, matrix_with_condition
from repro.linalg.lstsq import normal_equations
from repro.linalg.rand_cholqr import rand_cholqr, rand_cholqr_lstsq

D, N = 4096, 16


class TestCholeskyQR:
    def test_factorization_reconstructs(self, executor, rng):
        a_np = matrix_with_condition(512, 8, 10.0, seed=1)
        a = executor.to_device(a_np)
        q, r = cholesky_qr(a, executor)
        np.testing.assert_allclose(q.data @ r.data, a_np, rtol=1e-8)
        np.testing.assert_allclose(q.data.T @ q.data, np.eye(8), atol=1e-8)

    def test_breaks_down_for_ill_conditioned_input(self, executor):
        """Beyond kappa ~ u^{-1/2} plain Cholesky QR either fails outright or
        loses orthogonality badly (the Gram matrix has condition kappa^2)."""
        a_np = matrix_with_condition(512, 8, 1e9, seed=2)
        a = executor.to_device(a_np)
        try:
            q, _ = cholesky_qr(a, executor)
        except CholeskyFailedError:
            return
        orth_err = np.linalg.norm(q.data.T @ q.data - np.eye(8))
        assert orth_err > 1e-4

    def test_cholqr2_improves_orthogonality(self, executor):
        a_np = matrix_with_condition(512, 8, 1e6, seed=3)
        a = executor.to_device(a_np)
        q1, _ = cholesky_qr(a, executor)
        err1 = np.linalg.norm(q1.data.T @ q1.data - np.eye(8))
        q2, r2 = cholesky_qr2(a, executor)
        err2 = np.linalg.norm(q2.data.T @ q2.data - np.eye(8))
        assert err2 < err1
        np.testing.assert_allclose(q2.data @ r2.data, a_np, rtol=1e-6)


class TestRandCholQR:
    def test_factorization_well_conditioned(self, executor):
        a_np = matrix_with_condition(D, N, 100.0, seed=4)
        sketch = count_gauss(D, N, executor=executor, seed=1)
        q, r = rand_cholqr(a_np, sketch, executor=executor)
        np.testing.assert_allclose(q.data @ r.data, a_np, rtol=1e-8)
        np.testing.assert_allclose(q.data.T @ q.data, np.eye(N), atol=1e-10)
        # R is upper triangular
        np.testing.assert_allclose(r.data, np.triu(r.data), atol=1e-12)

    def test_stable_where_plain_cholesky_qr_fails(self, executor):
        """Algorithm 4 is stable up to kappa ~ u^{-1}, far beyond CholeskyQR's u^{-1/2}."""
        a_np = matrix_with_condition(2048, 8, 1e10, seed=5)
        sketch = count_gauss(2048, 8, executor=executor, seed=2)
        q, r = rand_cholqr(a_np, sketch, executor=executor)
        assert np.linalg.norm(q.data.T @ q.data - np.eye(8)) < 1e-6
        np.testing.assert_allclose(q.data @ r.data, a_np, rtol=1e-5)

    def test_executor_mismatch_rejected(self, executor):
        a_np = matrix_with_condition(512, 8, 10.0, seed=1)
        other = GPUExecutor(numeric=True, track_memory=False)
        sketch = count_gauss(512, 8, executor=other, seed=1)
        with pytest.raises(ValueError):
            rand_cholqr(a_np, sketch, executor=executor)


class TestRandCholQRLeastSquares:
    def test_no_distortion_relative_to_true_solution(self, executor, rng):
        """Algorithm 5 solves the true least-squares problem (no sketch distortion)."""
        a = matrix_with_condition(D, N, 100.0, seed=6)
        b = a @ np.ones(N) + 0.01 * rng.standard_normal(D)
        sketch = count_gauss(D, N, executor=executor, seed=3)
        result = rand_cholqr_lstsq(a, b, sketch, executor=executor)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(result.x, expected, rtol=1e-6)
        optimal = np.linalg.norm(b - a @ expected) / np.linalg.norm(b)
        assert result.relative_residual == pytest.approx(optimal, rel=1e-8)

    def test_stable_beyond_normal_equations_limit(self, executor):
        """Figure 8's story: rand_cholQR keeps working where the normal equations fail."""
        a = matrix_with_condition(2048, 8, 1e10, seed=7)
        b = a @ np.ones(8)
        sketch = count_gauss(2048, 8, executor=executor, seed=4)
        rc = rand_cholqr_lstsq(a, b, sketch, executor=executor)
        ne = normal_equations(a, b, executor=executor)
        assert not rc.failed
        assert rc.relative_residual < 1e-6
        assert ne.failed or ne.relative_residual > rc.relative_residual

    def test_phase_breakdown_contains_trsm_and_gram(self, executor, rng):
        a = matrix_with_condition(1024, 8, 10.0, seed=8)
        b = rng.standard_normal(1024)
        sketch = count_gauss(1024, 8, executor=executor, seed=5)
        result = rand_cholqr_lstsq(a, b, sketch, executor=executor)
        phases = result.phase_seconds()
        for expected in ("Matrix sketch", "GEQRF", "TRSM", "Gram matrix", "POTRF", "TRSV"):
            assert expected in phases

    def test_slower_than_sketch_and_solve_in_simulated_time(self):
        """Figure 5: rand_cholQR is the slowest of the randomized solvers."""
        from repro.linalg.lstsq import sketch_and_solve

        d, n = 1 << 21, 128
        ex1 = GPUExecutor(numeric=False, track_memory=False)
        a1, b1 = ex1.empty((d, n)), ex1.empty((d,))
        ss = sketch_and_solve(a1, b1, count_gauss(d, n, executor=ex1, seed=1), executor=ex1)

        ex2 = GPUExecutor(numeric=False, track_memory=False)
        a2, b2 = ex2.empty((d, n)), ex2.empty((d,))
        rc = rand_cholqr_lstsq(a2, b2, count_gauss(d, n, executor=ex2, seed=1), executor=ex2)
        assert rc.total_seconds > ss.total_seconds


class TestConditioning:
    def test_condition_number_exact(self):
        a = matrix_with_condition(256, 8, 1234.5, seed=9)
        assert condition_number(a) == pytest.approx(1234.5, rel=1e-6)

    @pytest.mark.parametrize("profile", ["geometric", "linear", "cluster"])
    def test_profiles(self, profile):
        a = matrix_with_condition(128, 6, 100.0, profile=profile, seed=10)
        assert condition_number(a) == pytest.approx(100.0, rel=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            matrix_with_condition(4, 8, 10.0)
        with pytest.raises(ValueError):
            matrix_with_condition(8, 4, 0.5)

    def test_condition_number_of_singular_matrix(self):
        a = np.zeros((4, 2))
        assert condition_number(a) == float("inf")
