"""Tests for the least-squares solvers (Algorithm 1, normal equations, QR)."""

import numpy as np
import pytest

from repro.core.countsketch import CountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.gpu.executor import GPUExecutor
from repro.linalg.conditioning import matrix_with_condition
from repro.linalg.lstsq import (
    normal_equations,
    qr_solve,
    relative_residual,
    sketch_and_solve,
)

D, N = 4096, 16


@pytest.fixture
def consistent_problem(rng):
    """A consistent system: b = A x_true exactly (zero residual)."""
    a = matrix_with_condition(D, N, 50.0, seed=7)
    x_true = rng.standard_normal(N)
    return a, a @ x_true, x_true


@pytest.fixture
def noisy_problem(rng):
    a = matrix_with_condition(D, N, 50.0, seed=8)
    b = a @ np.ones(N) + 0.01 * rng.standard_normal(D)
    return a, b


class TestRelativeResidual:
    def test_zero_for_exact_solution(self, consistent_problem):
        a, b, x = consistent_problem
        assert relative_residual(a, b, x) < 1e-12

    def test_zero_rhs(self):
        a = np.eye(3)
        assert relative_residual(a, np.zeros(3), np.ones(3)) == pytest.approx(np.sqrt(3))


class TestNormalEquations:
    def test_recovers_exact_solution(self, executor, consistent_problem):
        a, b, x_true = consistent_problem
        result = normal_equations(a, b, executor=executor)
        assert not result.failed
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6)
        assert result.relative_residual < 1e-10

    def test_matches_numpy_lstsq_on_noisy_problem(self, executor, noisy_problem):
        a, b = noisy_problem
        result = normal_equations(a, b, executor=executor)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(result.x, expected, rtol=1e-6)

    def test_phase_breakdown_matches_figure5_legend(self, executor, noisy_problem):
        a, b = noisy_problem
        result = normal_equations(a, b, executor=executor)
        phases = result.phase_seconds()
        for expected in ("Gram matrix", "AT*b", "POTRF", "TRSV"):
            assert expected in phases
        assert result.total_seconds == pytest.approx(sum(phases.values()))

    def test_fails_gracefully_on_ill_conditioned_matrix(self, executor, rng):
        a = matrix_with_condition(2048, 8, 1e12, seed=3)
        b = a @ np.ones(8)
        result = normal_equations(a, b, executor=executor)
        # Either Cholesky broke down (failed=True) or the residual is garbage;
        # in both cases the solver must not silently pretend to be accurate.
        assert result.failed or result.relative_residual > 1e-8

    def test_default_executor_created(self, noisy_problem):
        a, b = noisy_problem
        result = normal_equations(a, b)
        assert not result.failed


class TestSketchAndSolve:
    @pytest.mark.parametrize(
        "sketch_factory",
        [
            lambda ex: GaussianSketch(D, 4 * N, executor=ex, seed=1),
            lambda ex: CountSketch(D, 8 * N * N, executor=ex, seed=2),
            lambda ex: SRHT(D, 4 * N, executor=ex, seed=3),
            lambda ex: count_gauss(D, N, executor=ex, seed=4),
        ],
    )
    def test_residual_within_distortion_factor(self, executor, noisy_problem, sketch_factory):
        """Section 2: the sketched residual is within an O(1) factor of the optimum."""
        a, b = noisy_problem
        sketch = sketch_factory(executor)
        result = sketch_and_solve(a, b, sketch, executor=executor)
        optimal = normal_equations(a, b, executor=executor).relative_residual
        assert result.relative_residual >= optimal * (1 - 1e-9)
        assert result.relative_residual <= 2.0 * optimal

    def test_consistent_system_solved_exactly(self, executor, consistent_problem):
        """With zero residual, sketch-and-solve returns the exact solution."""
        a, b, x_true = consistent_problem
        sketch = count_gauss(D, N, executor=executor, seed=5)
        result = sketch_and_solve(a, b, sketch, executor=executor)
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6)

    def test_phase_breakdown(self, executor, noisy_problem):
        a, b = noisy_problem
        sketch = count_gauss(D, N, executor=executor, seed=6)
        result = sketch_and_solve(a, b, sketch, executor=executor)
        phases = result.phase_seconds()
        for expected in ("Sketch gen", "Matrix sketch", "Vector sketch", "GEQRF", "ORMQR", "TRSV"):
            assert expected in phases

    def test_method_name_includes_sketch_family(self, executor, noisy_problem):
        a, b = noisy_problem
        result = sketch_and_solve(a, b, count_gauss(D, N, executor=executor, seed=1), executor=executor)
        assert "multisketch" in result.method
        assert result.extra["sketch_dim"] == 2 * N

    def test_executor_mismatch_rejected(self, executor, noisy_problem):
        a, b = noisy_problem
        other = GPUExecutor(numeric=True, track_memory=False)
        sketch = count_gauss(D, N, executor=other, seed=1)
        with pytest.raises(ValueError):
            sketch_and_solve(a, b, sketch, executor=executor)

    def test_stable_on_ill_conditioned_matrix(self, executor):
        """Unlike the normal equations, sketch-and-solve handles kappa ~ 1e12."""
        a = matrix_with_condition(2048, 8, 1e12, seed=3)
        b = a @ np.ones(8)
        result = sketch_and_solve(a, b, count_gauss(2048, 8, executor=executor, seed=1), executor=executor)
        assert not result.failed
        assert result.relative_residual < 1e-3


class TestQRSolve:
    def test_matches_numpy_lstsq(self, executor, noisy_problem):
        a, b = noisy_problem
        result = qr_solve(a, b, executor=executor)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(result.x, expected, rtol=1e-8)

    def test_handles_extreme_conditioning(self, executor):
        a = matrix_with_condition(1024, 8, 1e14, seed=4)
        b = a @ np.ones(8)
        result = qr_solve(a, b, executor=executor)
        assert result.relative_residual < 1e-6
