"""Tests for the future-work extensions: Count-SRHT multisketch and the
Blendenpik-style sketch-preconditioned LSQR solver."""

import numpy as np
import pytest

from repro.core.multisketch import count_gauss, count_srht
from repro.gpu.executor import GPUExecutor
from repro.linalg.conditioning import matrix_with_condition
from repro.linalg.iterative import sketch_preconditioned_lsqr
from repro.linalg.lstsq import normal_equations

D, N = 4096, 16


class TestCountSRHT:
    def test_default_dimensions(self, executor):
        ms = count_srht(1 << 14, 32, executor=executor, seed=1)
        assert ms.stages[0].k == 2 * 32 * 32
        assert ms.k == 2 * 32

    def test_matches_explicit_composition(self, executor, rng):
        a = rng.standard_normal((D, 8))
        ms = count_srht(D, 8, executor=executor, seed=2)
        y = ms.sketch_host(a)
        expected = ms.stages[1].explicit_matrix() @ (ms.stages[0].explicit_matrix() @ a)
        np.testing.assert_allclose(y, expected, rtol=1e-9, atol=1e-9)

    def test_norm_preserved_in_expectation(self, executor, rng):
        x = rng.standard_normal(D)
        norms = [
            np.linalg.norm(count_srht(D, 16, executor=executor, seed=s).sketch_host(x)) ** 2
            for s in range(25)
        ]
        assert np.mean(norms) == pytest.approx(np.linalg.norm(x) ** 2, rel=0.25)

    def test_cheaper_sketch_generation_than_count_gauss(self):
        """No dense k2 x k1 Gaussian to generate: the gen phase shrinks."""
        d, n = 1 << 22, 256
        ex1 = GPUExecutor(numeric=False, track_memory=False)
        count_gauss(d, n, executor=ex1, seed=1).generate()
        gauss_gen = ex1.breakdown().phase_seconds("Sketch gen")
        ex2 = GPUExecutor(numeric=False, track_memory=False)
        count_srht(d, n, executor=ex2, seed=1).generate()
        srht_gen = ex2.breakdown().phase_seconds("Sketch gen")
        assert srht_gen < gauss_gen

    def test_k2_cannot_exceed_k1(self, executor):
        with pytest.raises(ValueError):
            count_srht(D, 8, k1=8, k2=16, executor=executor)


class TestSketchPreconditionedLSQR:
    def test_matches_exact_solution_on_well_conditioned_problem(self, executor, rng):
        a = matrix_with_condition(D, N, 100.0, seed=1)
        b = a @ np.ones(N) + 0.01 * rng.standard_normal(D)
        sketch = count_gauss(D, N, executor=executor, seed=2)
        result = sketch_preconditioned_lsqr(a, b, sketch, executor=executor)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(result.x, expected, rtol=1e-6)
        assert result.extra["converged"] == 1.0

    def test_iteration_count_independent_of_conditioning(self, executor, rng):
        """The whole point of Blendenpik: preconditioned LSQR converges in a
        handful of iterations regardless of kappa(A)."""
        iters = []
        for cond in (1e2, 1e6, 1e10):
            a = matrix_with_condition(2048, 8, cond, seed=3)
            b = a @ np.ones(8)
            sketch = count_gauss(2048, 8, executor=executor, seed=4)
            result = sketch_preconditioned_lsqr(a, b, sketch, executor=executor)
            # The residual floor of un-refined LSQR scales like u * kappa(A);
            # even at kappa = 1e10 it stays far below where the normal
            # equations have already failed completely.
            assert result.relative_residual < 1e-6
            iters.append(result.extra["iterations"])
        assert max(iters) <= 3 * max(min(iters), 1)
        assert max(iters) < 40

    def test_no_distortion_unlike_sketch_and_solve(self, executor, rng):
        a = matrix_with_condition(D, N, 100.0, seed=5)
        b = a @ np.ones(N) + 0.5 * rng.standard_normal(D)
        sketch = count_gauss(D, N, executor=executor, seed=6)
        blendenpik = sketch_preconditioned_lsqr(a, b, sketch, executor=executor)
        exact = normal_equations(a, b, executor=executor)
        assert blendenpik.relative_residual == pytest.approx(exact.relative_residual, rel=1e-8)

    def test_phase_breakdown_contains_lsqr_iterations(self, executor, rng):
        a = matrix_with_condition(1024, 8, 10.0, seed=7)
        b = rng.standard_normal(1024)
        sketch = count_gauss(1024, 8, executor=executor, seed=8)
        result = sketch_preconditioned_lsqr(a, b, sketch, executor=executor)
        phases = result.phase_seconds()
        assert "Matrix sketch" in phases and "GEQRF" in phases and "LSQR" in phases

    def test_analytic_mode_charges_representative_cost(self):
        ex = GPUExecutor(numeric=False, track_memory=False)
        a = ex.empty((1 << 20, 64))
        b = ex.empty((1 << 20,))
        sketch = count_gauss(1 << 20, 64, executor=ex, seed=1)
        result = sketch_preconditioned_lsqr(a, b, sketch, executor=ex)
        assert result.x is None
        assert result.total_seconds > 0
        assert result.extra["iterations"] > 0

    def test_invalid_arguments(self, executor, rng):
        a = matrix_with_condition(512, 8, 10.0, seed=9)
        b = rng.standard_normal(512)
        sketch = count_gauss(512, 8, executor=executor, seed=10)
        with pytest.raises(ValueError):
            sketch_preconditioned_lsqr(a, b, sketch, executor=executor, max_iterations=0)
        other = GPUExecutor(numeric=True, track_memory=False)
        with pytest.raises(ValueError):
            sketch_preconditioned_lsqr(a, b, sketch, executor=other)
