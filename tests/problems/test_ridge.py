"""Ridge problem class: solvers, lambda-aware routing, fallback chains."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.planner import SolvePlan, execute_plan, plan, plan_and_execute
from repro.linalg.registry import (
    SolveSpec,
    get_solver,
    ridge_effective_condition,
    solver_capabilities,
)
from repro.problems import (
    RIDGE_SOLVERS,
    augment_ridge_system,
    dense_ridge_reference,
    ridge_normal_equations,
    ridge_precond_lsqr,
    ridge_qr,
    ridge_residuals,
    solve_ridge,
)
from repro.workloads import make_ridge_problem

D, N = 4096, 16


@pytest.fixture
def easy_ridge():
    return make_ridge_problem(D, N, cond=1e4, lam_rel=1e-4, seed=1)


@pytest.fixture
def hard_ridge():
    """Ill-conditioned A with a lambda far below sigma_min^2: effectively
    unregularized, the regime where the regularized POTRF still breaks."""
    return make_ridge_problem(D, N, cond=1e12, lam_rel=1e-20, seed=4)


class TestEffectiveCondition:
    def test_matches_exact_augmented_conditioning(self, easy_ridge):
        p = easy_ridge
        a_aug, _ = augment_ridge_system(p.a, None, p.lam)
        exact = np.linalg.cond(a_aug)
        assert ridge_effective_condition(p.cond, p.lam, p.smax) == pytest.approx(
            exact, rel=1e-6
        )

    def test_healthy_lambda_caps_the_conditioning(self):
        # lam_rel = 1e-4 caps kappa_eff near sqrt(1/lam_rel) = 1e2 no matter
        # how singular A is.
        assert ridge_effective_condition(1e12, 1e-4, 1.0) == pytest.approx(1e2, rel=1e-3)
        assert ridge_effective_condition(float("inf"), 1e-4, 1.0) == pytest.approx(
            1e2, rel=1e-3
        )

    def test_tiny_lambda_changes_nothing(self):
        assert ridge_effective_condition(1e6, 1e-30, 1.0) == pytest.approx(1e6, rel=1e-6)

    def test_zero_lambda_is_identity(self):
        assert ridge_effective_condition(123.0, 0.0, 1.0) == 123.0


class TestRidgeSolvers:
    def test_all_three_match_the_dense_reference(self, easy_ridge):
        p = easy_ridge
        x_ref = dense_ridge_reference(p.a, p.b, p.lam)
        lsqr = get_solver("ridge_precond_lsqr")
        spec = SolveSpec(d=D, n=N, regularization=p.lam)
        results = [
            ridge_normal_equations(p.a, p.b, p.lam),
            ridge_qr(p.a, p.b, p.lam),
            ridge_precond_lsqr(p.a, p.b, p.lam, lsqr.build_operator(spec)),
        ]
        for result in results:
            assert not result.failed
            assert np.allclose(result.x, x_ref, atol=1e-6)

    def test_regularization_biases_toward_zero(self, easy_ridge):
        p = easy_ridge
        big = dense_ridge_reference(p.a, p.b, p.lam * 1e6)
        small = dense_ridge_reference(p.a, p.b, p.lam)
        assert np.linalg.norm(big) < np.linalg.norm(small)

    def test_residual_is_the_ridge_objective(self, easy_ridge):
        p = easy_ridge
        result = ridge_qr(p.a, p.b, p.lam)
        _, rel, _ = ridge_residuals(p.a, p.b, result.x, p.lam)
        assert result.relative_residual == pytest.approx(rel, rel=1e-10)

    def test_batched_rhs(self, easy_ridge, rng):
        p = easy_ridge
        bs = np.column_stack([p.b, p.a @ (2 * np.ones(N)) + rng.standard_normal(D)])
        result = ridge_normal_equations(p.a, bs, p.lam)
        assert result.x.shape == (N, 2)
        assert result.column_residuals.shape == (2,)
        for j in range(2):
            ref = dense_ridge_reference(p.a, bs[:, j], p.lam)
            assert np.allclose(result.x[:, j], ref, atol=1e-6)

    def test_negative_lambda_rejected(self, easy_ridge):
        with pytest.raises(ValueError):
            ridge_normal_equations(easy_ridge.a, easy_ridge.b, -1.0)

    def test_solvers_registered_under_ridge_problem(self):
        caps = solver_capabilities()
        for name in RIDGE_SOLVERS:
            assert caps[name].problem == "ridge"


class TestRidgeRouting:
    def test_problem_classes_never_mix(self):
        ls_spec = SolveSpec(d=D, n=N, cond_estimate=10.0)
        ridge_spec = SolveSpec(d=D, n=N, regularization=1.0, cond_estimate=10.0)
        ls_plan = plan(None, ls_spec)
        ridge_plan = plan(None, ridge_spec)
        assert not set(ls_plan.chain) & set(RIDGE_SOLVERS)
        assert set(ridge_plan.chain) <= set(RIDGE_SOLVERS)
        assert set(ridge_plan.costs) == set(RIDGE_SOLVERS)

    def test_healthy_lambda_admits_normal_equations(self):
        # kappa = 1e12 would exclude the plain normal equations outright,
        # but lam_rel = 1e-4 caps the effective conditioning at ~1e2.
        spec = SolveSpec(
            d=1 << 17, n=64, regularization=1e-4, cond_estimate=1e12, smax_estimate=1.0
        )
        caps = get_solver("ridge_normal_equations").capabilities
        assert caps.admissible(spec, 1e12)
        p = plan(None, spec)
        assert "ridge_normal_equations" in p.chain

    def test_tiny_lambda_excludes_normal_equations(self):
        spec = SolveSpec(
            d=1 << 17, n=64, regularization=1e-20, cond_estimate=1e12, smax_estimate=1.0
        )
        caps = get_solver("ridge_normal_equations").capabilities
        assert not caps.admissible(spec, 1e12)
        p = plan(None, spec)
        assert p.solver != "ridge_normal_equations"

    def test_probe_fills_spectrum_estimates(self, easy_ridge):
        p = easy_ridge
        plan_ = plan(p.a, SolveSpec(d=D, n=N, regularization=p.lam))
        assert plan_.cond_estimate == pytest.approx(p.cond, rel=0.5)

    def test_caller_supplied_cond_still_probes_smax(self):
        """A caller-supplied kappa must not leave the lambda on the default
        unit scale: with the matrix in hand the smax probe still runs, so a
        lambda that is large against smax=1 but tiny against the real
        spectrum does not sneak the normal equations into the chain."""
        p = make_ridge_problem(D, N, cond=1e12, lam_rel=1e-20, seed=6)
        # On the unit scale eff ~ 1/sqrt(lam) = 1e4 (floor met); on the true
        # smax ~ 181 scale eff ~ 1.8e6 (floor blown by ~1e4x).
        lam = 1e-8
        spec = SolveSpec(d=D, n=N, regularization=lam, cond_estimate=1e12)
        plan_ = plan(p.a, spec)
        assert "ridge_normal_equations" not in plan_.chain
        # Without the matrix there is nothing to probe: the unit default
        # applies and the solver is (optimistically) admitted.
        assert "ridge_normal_equations" in plan(None, spec).chain

    def test_explicit_solver_of_wrong_problem_class_refused(self, easy_ridge):
        from repro.linalg.registry import solve

        p = easy_ridge
        with pytest.raises(ValueError, match="problem"):
            solve(p.a, p.b, regularization=p.lam, solver="qr")
        with pytest.raises(ValueError, match="wrong question"):
            plan(None, SolveSpec(d=D, n=N, regularization=p.lam), policy="fixed", solver="qr")
        with pytest.raises(ValueError, match="wrong question"):
            plan(None, SolveSpec(d=D, n=N), policy="fixed", solver="ridge_qr")

    def test_end_to_end_residual_matches_reference(self, easy_ridge):
        p = easy_ridge
        result = solve_ridge(p.a, p.b, p.lam)
        assert not result.failed
        x_ref = dense_ridge_reference(p.a, p.b, p.lam)
        _, ref_rel, _ = ridge_residuals(p.a, p.b, x_ref, p.lam)
        assert result.relative_residual <= 1.1 * ref_rel

    def test_solve_ridge_rejects_nonpositive_lambda(self, easy_ridge):
        with pytest.raises(ValueError):
            solve_ridge(easy_ridge.a, easy_ridge.b, 0.0)


class TestRidgeFallbackChains:
    """The ISSUE's satellite: singular/ill-conditioned A with small lambda
    walks the ridge chain, and the attempted chain is recorded."""

    def _forced_chain(self, lam, *chain):
        return SolvePlan(
            solver=chain[0],
            chain=tuple(chain),
            kind="multisketch",
            embedding_dim=2 * N,
            cond_estimate=1e12,
            policy="cheapest_accurate",
            costs={},
        )

    def test_potrf_breakdown_rescued_by_ridge_lsqr(self, hard_ridge):
        p = hard_ridge
        spec = SolveSpec(d=D, n=N, regularization=p.lam)
        result = execute_plan(
            self._forced_chain(p.lam, "ridge_normal_equations", "ridge_precond_lsqr"),
            p.a,
            p.b,
            spec,
        )
        assert not result.failed
        assert result.attempted_solvers == ("ridge_normal_equations", "ridge_precond_lsqr")
        assert result.extra["fallbacks"] == 1.0
        assert "Cholesky" in result.failure_reason  # carried, not swallowed

    def test_full_chain_ends_in_ridge_qr(self, hard_ridge):
        p = hard_ridge
        spec = SolveSpec(d=D, n=N, regularization=p.lam)
        result = execute_plan(
            self._forced_chain(
                p.lam, "ridge_normal_equations", "ridge_precond_lsqr", "ridge_qr"
            ),
            p.a,
            p.b,
            spec,
        )
        assert not result.failed
        assert result.attempted_solvers[0] == "ridge_normal_equations"
        assert result.attempted_solvers[-1] in ("ridge_precond_lsqr", "ridge_qr")

    def test_planner_rescues_poisoned_estimate(self, hard_ridge):
        """A benign-looking conditioning estimate routes to the regularized
        normal equations; the POTRF breakdown walks the planner's own chain."""
        p = hard_ridge
        spec = SolveSpec(
            d=D,
            n=N,
            regularization=p.lam,
            cond_estimate=10.0,  # poison: looks benign
            smax_estimate=p.smax,
        )
        plan_ = plan(None, spec, policy="cheapest_accurate")
        result = execute_plan(plan_, p.a, p.b, spec)
        assert not result.failed
        attempted = result.attempted_solvers
        assert set(attempted) <= set(RIDGE_SOLVERS)
        if len(attempted) > 1:  # the breakdown actually fired
            assert attempted[0] == plan_.solver
            assert result.extra["fallbacks"] >= 1.0

    def test_plan_and_execute_end_to_end_on_hard_ridge(self, hard_ridge):
        p = hard_ridge
        result = plan_and_execute(
            p.a, p.b, SolveSpec(d=D, n=N, regularization=p.lam), policy="cheapest_accurate"
        )
        assert not result.failed
        x_ref = dense_ridge_reference(p.a, p.b, p.lam)
        _, ref_rel, _ = ridge_residuals(p.a, p.b, x_ref, p.lam)
        assert result.relative_residual <= 1.1 * ref_rel
