"""Low-rank problem class: range finder, Frequent Directions, streaming state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.countsketch import StreamingCountSketch
from repro.gpu.executor import GPUExecutor
from repro.problems import (
    FrequentDirections,
    lowrank_approx,
    optimal_rank_error,
    randomized_range_finder,
)
from repro.streaming.state import FrequentDirectionsState, make_state, normalize_mode
from repro.theory.complexity import fd_error_bound, lowrank_complexity
from repro.workloads import decaying_spectrum_matrix

D, N, RANK = 2048, 32, 6


@pytest.fixture
def problem():
    return decaying_spectrum_matrix(D, N, rank=RANK, decay=0.4, seed=7)


class TestRangeFinder:
    def test_q_is_orthonormal(self, problem, executor):
        q, _op = randomized_range_finder(problem.a, RANK, executor=executor, seed=3)
        qh = q.to_host()
        assert np.allclose(qh.T @ qh, np.eye(qh.shape[1]), atol=1e-10)

    def test_power_iteration_tightens_the_error(self, problem):
        flat = lowrank_approx(problem.a, RANK, power_iters=0, seed=3)
        sharp = lowrank_approx(problem.a, RANK, power_iters=2, seed=3)
        assert sharp.relative_error <= flat.relative_error * (1 + 1e-12)

    def test_near_optimal_on_decaying_spectrum(self, problem):
        result = lowrank_approx(problem.a, RANK, power_iters=1, seed=3)
        assert result.relative_error <= 1.5 * problem.optimal_error(RANK)
        assert result.rank == RANK
        assert result.left.shape == (D, RANK)
        assert result.right.shape == (RANK, N)

    def test_reconstruct_shape_and_charges(self, problem, executor):
        before = executor.elapsed
        result = lowrank_approx(problem.a, RANK, executor=executor, seed=3)
        assert result.reconstruct().shape == (D, N)
        assert executor.elapsed > before  # GEMMs/QRs landed on the clock
        assert result.total_seconds > 0

    def test_operator_shape_validated(self, problem, executor):
        from repro.core.gaussian import GaussianSketch

        wrong = GaussianSketch(N, 3, executor=executor, seed=0)
        with pytest.raises(ValueError, match="range-finder operator"):
            randomized_range_finder(problem.a, RANK, executor=executor, operator=wrong)

    def test_rank_bounds_validated(self, problem):
        with pytest.raises(ValueError):
            lowrank_approx(problem.a, 0)
        with pytest.raises(ValueError):
            lowrank_approx(problem.a, N + 1)

    def test_fd_batch_must_be_positive(self, problem):
        with pytest.raises(ValueError, match="batch"):
            lowrank_approx(problem.a, RANK, method="frequent_directions", batch=0)


class TestFrequentDirections:
    def test_within_fd_bound_of_optimum(self, problem):
        result = lowrank_approx(problem.a, RANK, method="frequent_directions")
        bound = fd_error_bound(problem.singular_values, 2 * RANK, RANK)
        assert result.relative_error <= bound * problem.optimal_error(RANK) * (1 + 1e-9)
        assert result.relative_error <= 1.5 * problem.optimal_error(RANK)

    def test_covariance_guarantee(self, problem):
        fd = FrequentDirections(N, 2 * RANK)
        fd.update(problem.a)
        # ||A^T A - B^T B||_2 <= ||A - A_k||_F^2 / (ell - k)
        assert fd.covariance_error(problem.a) <= problem.tail_energy(RANK) / RANK + 1e-9

    def test_streamed_equals_batched_error_class(self, problem):
        streamed = FrequentDirections(N, 2 * RANK)
        for start in range(0, D, 100):  # ragged batches
            streamed.update(problem.a[start : start + 100])
        v, _ = streamed.lowrank(RANK)
        err = np.linalg.norm(problem.a - (problem.a @ v) @ v.T) / np.linalg.norm(problem.a)
        assert err <= 1.5 * problem.optimal_error(RANK)
        assert streamed.rows_seen == D

    def test_state_is_fixed_size(self, problem):
        fd = FrequentDirections(N, 2 * RANK)
        fd.update(problem.a)
        assert fd.sketch().shape[0] <= 4 * RANK
        assert fd.compress().shape[0] <= 2 * RANK
        stats = lowrank_complexity(D, N, RANK)
        assert stats["fd_state_floats"] == 2 * (2 * RANK) * N
        assert stats["stream_length_exponent"] == 0.0

    def test_merge_absorbs_another_sketch(self, problem):
        left = FrequentDirections(N, 2 * RANK)
        right = FrequentDirections(N, 2 * RANK)
        left.update(problem.a[: D // 2])
        right.update(problem.a[D // 2 :])
        left.merge(right)
        assert left.rows_seen == D
        v, _ = left.lowrank(RANK)
        err = np.linalg.norm(problem.a - (problem.a @ v) @ v.T) / np.linalg.norm(problem.a)
        assert err <= 2.0 * problem.optimal_error(RANK)

    def test_empty_update_is_a_noop(self):
        fd = FrequentDirections(N, 4)
        fd.update(np.empty((0, N)))
        assert fd.rows_seen == 0
        with pytest.raises(RuntimeError):
            fd.lowrank(2)

    def test_charges_executor_when_given(self, problem, executor):
        before = executor.elapsed
        fd = FrequentDirections(N, 2 * RANK, executor=executor)
        fd.update(problem.a)
        assert executor.elapsed > before

    def test_from_countsketch_compresses_a_window(self, problem, executor):
        sketch = StreamingCountSketch(1 << 20, 512, executor=executor, seed=0)
        sketch.generate()
        sketch.begin(N)
        sketch.update(np.arange(D), problem.a)
        fd = FrequentDirections.from_countsketch(sketch, 2 * RANK)
        v, _ = fd.lowrank(RANK)
        err = np.linalg.norm(problem.a - (problem.a @ v) @ v.T) / np.linalg.norm(problem.a)
        # Two approximations stack (embedding distortion x FD shrink).
        assert err <= 3.0 * problem.optimal_error(RANK)
        assert fd.sketch().shape[1] == N


class TestFrequentDirectionsState:
    def test_mode_normalisation(self):
        assert normalize_mode("fd") == "fd"
        assert normalize_mode("frequent_directions") == "fd"

    def test_window_contract(self, problem, executor):
        state = make_state("fd", N, 4 * RANK, executor=executor)
        assert isinstance(state, FrequentDirectionsState)
        assert state.operator is None  # deterministic: nothing to pin
        state.fold(problem.a[:500], 500)
        window = state.current()
        assert window.shape == (4 * RANK, N)
        assert state.rows_in_window() == 500
        state.reset()
        assert state.rows_in_window() == 0
        assert np.all(state.current() == 0.0)

    def test_streaming_solver_fd_mode(self, rng):
        from repro.streaming import StreamingSolver

        n = 8
        solver = StreamingSolver(n, mode="fd", detector=False)
        x_true = np.linspace(1.0, 2.0, n)
        for _ in range(5):
            rows = rng.standard_normal((200, n))
            solver.ingest(rows, rows @ x_true + 0.01 * rng.standard_normal(200))
        solution = solver.solution()
        assert not solution.failed
        assert np.linalg.norm(solution.x - x_true) / np.linalg.norm(x_true) < 0.05
