"""Tests for embedding dimensions, distortion measurement, and Table 1."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gaussian import GaussianSketch
from repro.theory.complexity import (
    complexity_table,
    crossover_n,
    gram_matrix_cost,
    sketch_complexity,
    solver_complexity,
)
from repro.theory.distortion import (
    measure_pairwise_distortion,
    measure_subspace_distortion,
    observed_residual_inflation,
    residual_distortion_bound,
)
from repro.theory.embeddings import (
    countsketch_embedding_dim,
    gaussian_embedding_dim,
    multisketch_distortion,
    multisketch_embedding_dims,
    required_embedding_dim,
    sketch_and_solve_residual_factor,
    srht_embedding_dim,
    subspace_embedding_holds,
)


class TestEmbeddingDims:
    def test_gaussian_scales_linearly_in_n(self):
        assert gaussian_embedding_dim(200, 0.5) > gaussian_embedding_dim(100, 0.5)
        # k ~ n / eps^2
        assert gaussian_embedding_dim(100, 0.25) > 3 * gaussian_embedding_dim(100, 0.5)

    def test_countsketch_scales_quadratically_in_n(self):
        small = countsketch_embedding_dim(10, 0.5, 0.1)
        large = countsketch_embedding_dim(20, 0.5, 0.1)
        assert 3.5 < large / small < 4.5

    def test_srht_theoretical_exceeds_practical(self):
        assert srht_embedding_dim(128, 0.5) > srht_embedding_dim(128, 0.5, practical=True)

    def test_ordering_gaussian_below_srht_below_countsketch(self):
        n, eps, delta = 64, 0.5, 0.01
        g = gaussian_embedding_dim(n, eps, delta)
        s = srht_embedding_dim(n, eps, delta)
        c = countsketch_embedding_dim(n, eps, delta)
        assert g <= s <= c

    def test_multisketch_final_dimension_matches_gaussian_order(self):
        k1, k2 = multisketch_embedding_dims(64)
        assert k1 > k2
        assert k2 <= 2 * gaussian_embedding_dim(64)

    def test_dispatch(self):
        assert required_embedding_dim("gaussian", 32) == gaussian_embedding_dim(32)
        assert required_embedding_dim("multisketch", 32) == multisketch_embedding_dims(32)[1]
        with pytest.raises(ValueError):
            required_embedding_dim("butterfly", 32)

    def test_subspace_embedding_holds(self):
        need = gaussian_embedding_dim(16)
        assert subspace_embedding_holds("gaussian", 16, need)
        assert not subspace_embedding_holds("gaussian", 16, need - 1)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            gaussian_embedding_dim(0, 0.5)
        with pytest.raises(ValueError):
            gaussian_embedding_dim(10, 1.5)
        with pytest.raises(ValueError):
            gaussian_embedding_dim(10, 0.5, delta=0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=512),
        eps=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_dimensions_always_at_least_n(self, n, eps):
        assert gaussian_embedding_dim(n, eps) >= n
        assert srht_embedding_dim(n, eps) >= n


class TestDistortionFormulas:
    def test_multisketch_distortion_composition(self):
        assert multisketch_distortion(0.5, 0.5) == pytest.approx(1.25)
        assert multisketch_distortion(0.0, 0.0) == 0.0
        with pytest.raises(ValueError):
            multisketch_distortion(-0.1, 0.5)

    def test_residual_factor_monotone_in_eps(self):
        assert sketch_and_solve_residual_factor(0.0) == pytest.approx(1.0)
        assert sketch_and_solve_residual_factor(0.5) == pytest.approx(math.sqrt(3.0))
        assert residual_distortion_bound(0.5) == pytest.approx(math.sqrt(3.0))
        with pytest.raises(ValueError):
            sketch_and_solve_residual_factor(1.0)

    def test_observed_residual_inflation(self):
        assert observed_residual_inflation(2.0, 1.0) == 2.0
        assert observed_residual_inflation(0.0, 0.0) == 1.0
        assert math.isinf(observed_residual_inflation(1.0, 0.0))
        with pytest.raises(ValueError):
            observed_residual_inflation(-1.0, 1.0)


class TestEmpiricalDistortion:
    def test_subspace_distortion_zero_for_identity_like_sketch(self, rng):
        """A sketch that is an exact isometry on the subspace has zero distortion."""

        class _Identity:
            def sketch_host(self, a):
                return np.asarray(a, dtype=np.float64)

        basis = rng.standard_normal((64, 4))
        assert measure_subspace_distortion(_Identity(), basis) == pytest.approx(0.0, abs=1e-12)

    def test_pairwise_distortion_bounded_by_subspace_distortion_scale(self, rng):
        basis = rng.standard_normal((1024, 4))
        sketch = GaussianSketch(1024, 256, seed=3)
        pairwise = measure_pairwise_distortion(sketch, basis, rng=np.random.default_rng(0))
        assert pairwise < 1.0

    def test_basis_must_be_2d(self, rng):
        sketch = GaussianSketch(64, 16, seed=1)
        with pytest.raises(ValueError):
            measure_subspace_distortion(sketch, rng.standard_normal(64))


class TestTable1:
    def test_all_rows_present(self):
        rows = complexity_table(1 << 22, 128)
        methods = [r.method for r in rows]
        assert any("Gaussian" in m for m in methods)
        assert any("SRHT" in m for m in methods)
        assert any("CountSketch" in m for m in methods)
        assert any("MultiSketch" in m for m in methods)

    def test_countsketch_has_lowest_arithmetic(self):
        d, n = 1 << 22, 128
        rows = {r.method.split("(")[0]: r for r in complexity_table(d, n)}
        assert rows["CountSketch"].arithmetic < rows["SRHT"].arithmetic
        assert rows["SRHT"].arithmetic < rows["Gaussian"].arithmetic

    def test_countsketch_needs_largest_embedding_dim(self):
        d, n = 1 << 22, 128
        rows = {r.method.split("(")[0]: r for r in complexity_table(d, n)}
        assert rows["CountSketch"].embedding_dim > rows["SRHT"].embedding_dim
        assert rows["SRHT"].embedding_dim > rows["Gaussian"].embedding_dim

    def test_multisketch_work_is_dn_plus_n4(self):
        d, n = 10_000, 8
        row = sketch_complexity("multisketch", d, n, 0.5)
        assert row.arithmetic == pytest.approx(d * n + n**4)
        assert row.max_distortion == pytest.approx(1.5 * 1.5)

    def test_gram_matrix_cost(self):
        cost = gram_matrix_cost(1000, 10)
        assert cost["arithmetic"] == pytest.approx(2 * 1000 * 100)

    def test_multisketch_cheaper_than_gram_for_wide_matrices(self):
        d, n = 1 << 22, 128
        multi = sketch_complexity("multisketch", d, n).arithmetic
        gram = gram_matrix_cost(d, n)["arithmetic"]
        assert multi < gram

    def test_as_dict_round_trip(self):
        row = sketch_complexity("gaussian", 100, 10)
        d = row.as_dict()
        assert d["method"] == "Gaussian"
        assert d["arithmetic"] == row.arithmetic

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sketch_complexity("gaussian", 0, 10)
        with pytest.raises(ValueError):
            sketch_complexity("gaussian", 10, 10, eps=2.0)
        with pytest.raises(ValueError):
            sketch_complexity("warp", 10, 10)
        with pytest.raises(ValueError):
            crossover_n(eps=0.0)


class TestSolverComplexity:
    """The planner's a-priori cost model (one entry per registered solver)."""

    SOLVERS = ("normal_equations", "sketch_and_solve", "qr", "rand_cholqr",
               "sketch_precond_lsqr")

    def test_every_registered_solver_has_a_row(self):
        for solver in self.SOLVERS:
            cost = solver_complexity(solver, 1 << 17, 64, nrhs=8)
            assert cost["arithmetic"] > 0 and cost["read_writes"] > 0

    def test_qr_dominates_at_paper_scale(self):
        d, n = 1 << 22, 256
        qr = solver_complexity("qr", d, n)
        sas = solver_complexity("sketch_and_solve", d, n, sketch_kind="multisketch")
        assert qr["read_writes"] > 5 * sas["read_writes"]

    def test_batched_rhs_amortises_the_factorisation(self):
        d, n, m = 1 << 20, 128, 16
        fused = solver_complexity("sketch_and_solve", d, n, nrhs=m)["arithmetic"]
        single = solver_complexity("sketch_and_solve", d, n, nrhs=1)["arithmetic"]
        assert fused < 0.5 * m * single

    def test_lsqr_cost_scales_with_iterations(self):
        base = solver_complexity("sketch_precond_lsqr", 1 << 17, 64, iterations=10)
        more = solver_complexity("sketch_precond_lsqr", 1 << 17, 64, iterations=100)
        assert more["arithmetic"] > 5 * base["arithmetic"]

    def test_aliases_and_validation(self):
        assert solver_complexity("blendenpik", 4096, 16) == solver_complexity(
            "sketch_precond_lsqr", 4096, 16
        )
        with pytest.raises(ValueError):
            solver_complexity("conjugate_gradient", 4096, 16)
        with pytest.raises(ValueError):
            solver_complexity("qr", 4096, 16, nrhs=0)
