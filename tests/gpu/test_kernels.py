"""Tests for the roofline kernel cost model."""

import math

import pytest

from repro.gpu.device import H100_SXM5
from repro.gpu.kernels import KernelClass, KernelCostModel, KernelRequest


@pytest.fixture
def model():
    return KernelCostModel(H100_SXM5)


class TestRoofline:
    def test_memory_bound_kernel_time(self, model):
        # 1 GB of traffic through the atomic CountSketch kernel class.
        req = KernelRequest(
            name="countsketch_atomic",
            kclass=KernelClass.ATOMIC,
            bytes_read=0.5e9,
            bytes_written=0.5e9,
            flops=1e6,
        )
        expected = 1e9 / (H100_SXM5.memory_bandwidth * H100_SXM5.atomic_efficiency)
        assert model.memory_time(req) == pytest.approx(expected)
        timing = model.estimate(req)
        assert timing.seconds == pytest.approx(expected + model.overhead_time(req))

    def test_compute_bound_kernel_time(self, model):
        # A large GEMM: flops dominate the traffic.
        req = KernelRequest(
            name="gemm",
            kclass=KernelClass.GEMM,
            bytes_read=1e6,
            bytes_written=1e6,
            flops=1e13,
        )
        expected = 1e13 / (H100_SXM5.peak_flops_fp64 * H100_SXM5.gemm_efficiency)
        assert model.compute_time(req) == pytest.approx(expected)
        assert model.estimate(req).seconds > expected

    def test_roofline_takes_maximum(self, model):
        req = KernelRequest(
            name="balanced",
            kclass=KernelClass.GEMM,
            bytes_read=1e9,
            flops=1e9,
        )
        t = model.estimate(req)
        assert t.seconds >= model.memory_time(req)
        assert t.seconds >= model.compute_time(req)

    def test_launch_and_sync_overheads_accumulate(self, model):
        req = KernelRequest(
            name="fwht",
            kclass=KernelClass.FWHT,
            bytes_read=0.0,
            launches=10,
            syncs=10,
        )
        expected = 10 * H100_SXM5.kernel_launch_overhead + 10 * H100_SXM5.sync_overhead
        assert model.overhead_time(req) == pytest.approx(expected)

    def test_fp32_peak_used_for_4_byte_dtype(self, model):
        req64 = KernelRequest(name="gemm", kclass=KernelClass.GEMM, flops=1e13, dtype_size=8)
        req32 = KernelRequest(name="gemm", kclass=KernelClass.GEMM, flops=1e13, dtype_size=4)
        assert model.compute_time(req32) < model.compute_time(req64)

    def test_rng_rate_drives_generation_time(self, model):
        req = KernelRequest(name="curand", kclass=KernelClass.RNG, flops=6.0e10, bytes_written=1.0)
        assert model.compute_time(req) == pytest.approx(1.0, rel=1e-6)


class TestEfficiencyOrdering:
    """The relative efficiencies encode the paper's Figure-3 story."""

    def test_atomic_beats_spmm(self, model):
        assert model.bandwidth_efficiency(KernelClass.ATOMIC) > model.bandwidth_efficiency(
            KernelClass.SPMM
        )

    def test_fwht_beats_atomic(self, model):
        assert model.bandwidth_efficiency(KernelClass.FWHT) > model.bandwidth_efficiency(
            KernelClass.ATOMIC
        )

    def test_gemm_has_highest_flop_efficiency(self, model):
        gemm = model.flop_efficiency(KernelClass.GEMM)
        for kclass in KernelClass:
            assert model.flop_efficiency(kclass) <= gemm

    def test_same_traffic_spmm_roughly_three_times_slower_than_atomic(self, model):
        nbytes = 10e9
        atomic = model.estimate(
            KernelRequest(name="a", kclass=KernelClass.ATOMIC, bytes_read=nbytes)
        ).seconds
        spmm = model.estimate(
            KernelRequest(name="s", kclass=KernelClass.SPMM, bytes_read=nbytes)
        ).seconds
        assert 2.0 < spmm / atomic < 4.0


class TestTimingMetadata:
    def test_estimate_propagates_metadata(self, model):
        req = KernelRequest(
            name="k",
            kclass=KernelClass.STREAM,
            bytes_read=100.0,
            bytes_written=50.0,
            flops=7.0,
            launches=3,
            phase="Apply",
        )
        t = model.estimate(req)
        assert t.name == "k"
        assert t.bytes_moved == pytest.approx(150.0)
        assert t.flops == pytest.approx(7.0)
        assert t.launches == 3
        assert t.phase == "Apply"

    def test_phase_override(self, model):
        req = KernelRequest(name="k", kclass=KernelClass.STREAM, phase="default")
        assert model.estimate(req, phase="override").phase == "override"

    def test_peaks_exposed(self, model):
        assert model.peak_bandwidth() == H100_SXM5.memory_bandwidth
        assert model.peak_flops(8) == H100_SXM5.peak_flops_fp64
