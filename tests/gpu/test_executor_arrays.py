"""Tests for the executor and device array handles."""

import numpy as np
import pytest

from repro.gpu.arrays import DeviceArray
from repro.gpu.device import TEST_DEVICE
from repro.gpu.executor import GPUExecutor
from repro.gpu.kernels import KernelClass, KernelRequest
from repro.gpu.memory import DeviceOutOfMemoryError


class TestAllocation:
    def test_empty_numeric_has_data(self, executor):
        arr = executor.empty((10, 3), label="x")
        assert arr.is_numeric
        assert arr.shape == (10, 3)
        assert arr.data.shape == (10, 3)

    def test_empty_analytic_has_no_data(self, analytic_executor):
        arr = analytic_executor.empty((10, 3))
        assert not arr.is_numeric
        with pytest.raises(RuntimeError):
            arr.require_data()

    def test_zeros_initialises_and_charges_memset(self, executor):
        before = len(executor.breakdown())
        arr = executor.zeros((5, 5))
        assert np.all(arr.data == 0.0)
        names = [r.name for r in executor.breakdown().records[before:]]
        assert "memset" in names

    def test_to_device_copies(self, executor, rng):
        host = rng.standard_normal((7, 2))
        dev = executor.to_device(host)
        host[0, 0] = 1e9
        assert dev.data[0, 0] != 1e9

    def test_memory_tracked_allocation_and_oom(self):
        ex = GPUExecutor(TEST_DEVICE, numeric=False, track_memory=True)
        ex.empty((1000, 1000))  # 8 MB, fine
        with pytest.raises(DeviceOutOfMemoryError):
            ex.empty((200_000, 1000))  # 1.6 GB > 1 GB test device

    def test_free_releases_memory(self):
        ex = GPUExecutor(TEST_DEVICE, numeric=False, track_memory=True)
        arr = ex.empty((1000, 1000))
        used = ex.memory.in_use
        arr.free()
        assert ex.memory.in_use < used

    def test_like_matches_template(self, executor):
        template = executor.empty((4, 4), dtype=np.float32, order="F")
        clone = executor.like(template)
        assert clone.shape == (4, 4)
        assert clone.dtype == np.float32
        assert clone.order == "F"


class TestLaunchAndPhases:
    def test_launch_advances_clock(self, executor):
        t0 = executor.elapsed
        executor.launch(
            KernelRequest(name="k", kclass=KernelClass.STREAM, bytes_read=1e9)
        )
        assert executor.elapsed > t0

    def test_phase_context_labels_launches(self, executor):
        with executor.phase("Matrix sketch"):
            executor.launch(KernelRequest(name="k", kclass=KernelClass.STREAM, bytes_read=1.0))
        assert "Matrix sketch" in executor.breakdown().by_phase()

    def test_mark_and_breakdown_since(self, executor):
        executor.launch(KernelRequest(name="a", kclass=KernelClass.STREAM, bytes_read=1e6))
        mark = executor.mark()
        executor.launch(KernelRequest(name="b", kclass=KernelClass.STREAM, bytes_read=1e6))
        since = executor.breakdown_since(mark)
        assert [r.name for r in since.records] == ["b"]
        assert executor.elapsed_since(mark) == pytest.approx(since.total())

    def test_reset_clock(self, executor):
        executor.launch(KernelRequest(name="a", kclass=KernelClass.STREAM, bytes_read=1e6))
        executor.reset_clock()
        assert executor.elapsed == 0.0

    def test_lazy_library_handles_are_cached(self, executor):
        assert executor.blas is executor.blas
        assert executor.solver is executor.solver
        assert executor.sparse is executor.sparse
        assert executor.rand is executor.rand


class TestDeviceArray:
    def test_properties(self, executor):
        arr = executor.empty((6, 4), dtype=np.float64)
        assert arr.ndim == 2
        assert arr.size == 24
        assert arr.nbytes == 24 * 8
        assert arr.itemsize == 8

    def test_to_host_returns_copy(self, executor):
        arr = executor.zeros((3, 3))
        host = arr.to_host()
        host[0, 0] = 5.0
        assert arr.data[0, 0] == 0.0

    def test_with_order_is_a_transposed_view(self, executor, rng):
        arr = executor.to_device(rng.standard_normal((4, 6)), order="C")
        view = arr.with_order("F")
        assert view.shape == (6, 4)
        assert view.order == "F"
        assert np.shares_memory(view.data, arr.data)
        np.testing.assert_array_equal(view.data, arr.data.T)

    def test_with_order_same_order_returns_self(self, executor):
        arr = executor.empty((4, 6), order="C")
        assert arr.with_order("C") is arr

    def test_invalid_order_rejected(self, executor):
        with pytest.raises(ValueError):
            DeviceArray((2, 2), np.float64, "Z", None, "x", None, executor)

    def test_seeded_executors_are_reproducible(self):
        a = GPUExecutor(numeric=True, seed=7, track_memory=False).rng.standard_normal(5)
        b = GPUExecutor(numeric=True, seed=7, track_memory=False).rng.standard_normal(5)
        np.testing.assert_array_equal(a, b)
