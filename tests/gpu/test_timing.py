"""Tests for the simulated clock, kernel timings, and breakdowns."""

import pytest

from repro.gpu.timing import KernelTiming, SimClock, TimeBreakdown


def _timing(name="k", seconds=1.0, nbytes=100.0, flops=10.0, phase="p"):
    return KernelTiming(name=name, seconds=seconds, bytes_moved=nbytes, flops=flops, phase=phase)


class TestKernelTiming:
    def test_achieved_rates(self):
        t = _timing(seconds=2.0, nbytes=200.0, flops=50.0)
        assert t.achieved_bandwidth() == pytest.approx(100.0)
        assert t.achieved_flops() == pytest.approx(25.0)

    def test_zero_time_rates_are_zero(self):
        t = _timing(seconds=0.0)
        assert t.achieved_bandwidth() == 0.0
        assert t.achieved_flops() == 0.0

    def test_relabel_preserves_everything_else(self):
        t = _timing(phase="old")
        r = t.relabel("new")
        assert r.phase == "new"
        assert r.seconds == t.seconds
        assert r.name == t.name


class TestTimeBreakdown:
    def test_totals(self):
        b = TimeBreakdown()
        b.add(_timing(seconds=1.0, nbytes=10, flops=1))
        b.add(_timing(seconds=2.0, nbytes=20, flops=2))
        assert b.total() == pytest.approx(3.0)
        assert b.total_bytes() == pytest.approx(30.0)
        assert b.total_flops() == pytest.approx(3.0)
        assert len(b) == 2

    def test_by_phase_groups_and_orders(self):
        b = TimeBreakdown()
        b.add(_timing(seconds=1.0, phase="Sketch gen"))
        b.add(_timing(seconds=2.0, phase="Matrix sketch"))
        b.add(_timing(seconds=3.0, phase="Sketch gen"))
        phases = b.by_phase()
        assert list(phases) == ["Sketch gen", "Matrix sketch"]
        assert phases["Sketch gen"] == pytest.approx(4.0)
        assert b.phase_seconds("Matrix sketch") == pytest.approx(2.0)

    def test_by_kernel(self):
        b = TimeBreakdown()
        b.add(_timing(name="gemm", seconds=1.0))
        b.add(_timing(name="gemm", seconds=1.5))
        b.add(_timing(name="potrf", seconds=0.5))
        assert b.by_kernel() == {"gemm": pytest.approx(2.5), "potrf": pytest.approx(0.5)}

    def test_merged_and_scaled(self):
        b1, b2 = TimeBreakdown(), TimeBreakdown()
        b1.add(_timing(seconds=2.0))
        b2.add(_timing(seconds=4.0))
        merged = b1.merged(b2)
        assert merged.total() == pytest.approx(6.0)
        halved = merged.scaled(0.5)
        assert halved.total() == pytest.approx(3.0)
        # originals untouched
        assert b1.total() == pytest.approx(2.0)

    def test_extend(self):
        b = TimeBreakdown()
        b.extend([_timing(), _timing()])
        assert len(b) == 2


class TestSimClock:
    def test_record_advances_clock(self):
        clock = SimClock()
        clock.record(_timing(seconds=1.5))
        clock.record(_timing(seconds=0.5))
        assert clock.now == pytest.approx(2.0)
        assert clock.breakdown.total() == pytest.approx(2.0)

    def test_phase_region_overrides_label(self):
        clock = SimClock()
        with clock.phase("Matrix sketch"):
            stored = clock.record(_timing(phase="unlabelled"))
        assert stored.phase == "Matrix sketch"
        assert clock.breakdown.by_phase() == {"Matrix sketch": pytest.approx(1.0)}

    def test_nested_phase_regions(self):
        clock = SimClock()
        with clock.phase("outer"):
            with clock.phase("inner"):
                clock.record(_timing())
            clock.record(_timing())
        phases = clock.breakdown.by_phase()
        assert phases == {"inner": pytest.approx(1.0), "outer": pytest.approx(1.0)}
        assert clock.current_phase() is None

    def test_breakdown_since(self):
        clock = SimClock()
        clock.record(_timing(seconds=1.0))
        mark = len(clock.breakdown)
        clock.record(_timing(seconds=5.0))
        assert clock.breakdown_since(mark).total() == pytest.approx(5.0)

    def test_elapsed_since_and_reset(self):
        clock = SimClock()
        clock.record(_timing(seconds=1.0))
        t0 = clock.now
        clock.record(_timing(seconds=2.0))
        assert clock.elapsed_since(t0) == pytest.approx(2.0)
        clock.reset()
        assert clock.now == 0.0
        assert len(clock.breakdown) == 0

    def test_snapshot_is_independent(self):
        clock = SimClock()
        clock.record(_timing(seconds=1.0))
        snap = clock.snapshot()
        clock.record(_timing(seconds=1.0))
        assert snap.total() == pytest.approx(1.0)
        assert clock.breakdown.total() == pytest.approx(2.0)
