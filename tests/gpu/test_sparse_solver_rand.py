"""Tests for the cuSPARSE, cuSOLVER, and cuRAND stand-ins."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.gpu.solver import CholeskyFailedError


# ---------------------------------------------------------------------------
# cuSPARSE
# ---------------------------------------------------------------------------
class TestSparse:
    def _countsketch_csr(self, executor, rng, k=16, d=200):
        rows = rng.integers(0, k, size=d)
        cols = np.arange(d)
        vals = rng.choice([-1.0, 1.0], size=d)
        return executor.sparse.build_csr((k, d), rows, cols, vals), rows, vals

    def test_spmm_matches_dense_product(self, executor, rng):
        csr, _, _ = self._countsketch_csr(executor, rng)
        a = executor.to_device(rng.standard_normal((200, 5)))
        y = executor.sparse.spmm(csr, a)
        np.testing.assert_allclose(y.data, csr.matrix.toarray() @ a.data, rtol=1e-12)

    def test_spmv_matches_dense_product(self, executor, rng):
        csr, _, _ = self._countsketch_csr(executor, rng)
        x = executor.to_device(rng.standard_normal(200))
        y = executor.sparse.spmv(csr, x)
        np.testing.assert_allclose(y.data, csr.matrix.toarray() @ x.data, rtol=1e-12)

    def test_spmm_dimension_mismatch(self, executor, rng):
        csr, _, _ = self._countsketch_csr(executor, rng)
        with pytest.raises(ValueError):
            executor.sparse.spmm(csr, executor.empty((77, 3)))

    def test_analytic_csr_requires_nnz(self, analytic_executor):
        with pytest.raises(ValueError):
            analytic_executor.sparse.build_csr((10, 100), None, None, None)
        csr = analytic_executor.sparse.build_csr((10, 100), None, None, None, nnz=100)
        assert csr.nnz == 100
        assert not csr.is_numeric

    def test_csr_nbytes_counts_values_and_indices(self, executor, rng):
        csr, _, _ = self._countsketch_csr(executor, rng, k=8, d=100)
        assert csr.nbytes >= 100 * (8 + 4)

    def test_spmm_uses_spmm_kernel_class(self, executor, rng):
        csr, _, _ = self._countsketch_csr(executor, rng)
        a = executor.to_device(rng.standard_normal((200, 5)))
        mark = executor.mark()
        executor.sparse.spmm(csr, a)
        assert executor.breakdown_since(mark).records[0].name == "cusparse_spmm"


# ---------------------------------------------------------------------------
# cuSOLVER
# ---------------------------------------------------------------------------
class TestSolver:
    def test_potrf_reconstructs(self, executor, rng):
        m = rng.standard_normal((20, 6))
        g = executor.to_device(m.T @ m + 6 * np.eye(6))
        r = executor.solver.potrf(g)
        np.testing.assert_allclose(r.data.T @ r.data, g.data, rtol=1e-10)
        # upper triangular
        assert np.allclose(r.data, np.triu(r.data))

    def test_potrf_raises_on_indefinite(self, executor):
        g = executor.to_device(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite
        with pytest.raises(CholeskyFailedError):
            executor.solver.potrf(g)

    def test_potrf_requires_square(self, executor):
        with pytest.raises(ValueError):
            executor.solver.potrf(executor.empty((3, 4)))

    def test_geqrf_ormqr_solve_least_squares(self, executor, rng):
        a_np = rng.standard_normal((50, 6))
        x_true = rng.standard_normal(6)
        b_np = a_np @ x_true
        a = executor.to_device(a_np)
        b = executor.to_device(b_np)
        factors = executor.solver.geqrf(a)
        qtb = executor.solver.ormqr(factors, b)
        x = executor.solver.trsv(factors.r, qtb)
        np.testing.assert_allclose(x.data, x_true, rtol=1e-10)

    def test_geqrf_requires_tall(self, executor):
        with pytest.raises(ValueError):
            executor.solver.geqrf(executor.empty((3, 5)))

    def test_ormqr_dimension_mismatch(self, executor, rng):
        a = executor.to_device(rng.standard_normal((20, 4)))
        factors = executor.solver.geqrf(a)
        with pytest.raises(ValueError):
            executor.solver.ormqr(factors, executor.empty((7,)))

    def test_trsv_upper_and_transposed(self, executor, rng):
        r_np = np.triu(rng.standard_normal((5, 5))) + 5 * np.eye(5)
        b_np = rng.standard_normal(5)
        r = executor.to_device(r_np)
        b = executor.to_device(b_np)
        x = executor.solver.trsv(r, b)
        np.testing.assert_allclose(r_np @ x.data, b_np, rtol=1e-10)
        y = executor.solver.trsv(r, b, transpose=True)
        np.testing.assert_allclose(r_np.T @ y.data, b_np, rtol=1e-10)

    def test_trsm_preconditions(self, executor, rng):
        a_np = rng.standard_normal((30, 4))
        r_np = np.triu(rng.standard_normal((4, 4))) + 4 * np.eye(4)
        a = executor.to_device(a_np)
        r = executor.to_device(r_np)
        a0 = executor.solver.trsm(a, r)
        np.testing.assert_allclose(a0.data @ r_np, a_np, rtol=1e-10)

    def test_trsm_shape_check(self, executor):
        with pytest.raises(ValueError):
            executor.solver.trsm(executor.empty((10, 4)), executor.empty((3, 3)))

    def test_householder_qr_solve(self, executor, rng):
        a_np = rng.standard_normal((60, 5))
        b_np = rng.standard_normal(60)
        a = executor.to_device(a_np)
        b = executor.to_device(b_np)
        x = executor.solver.householder_qr_solve(a, b)
        expected, *_ = np.linalg.lstsq(a_np, b_np, rcond=None)
        np.testing.assert_allclose(x.data, expected, rtol=1e-8)

    def test_analytic_geqrf_has_no_q(self, analytic_executor):
        factors = analytic_executor.solver.geqrf(analytic_executor.empty((100, 10)))
        assert factors.q is None
        # Analytic ORMQR still produces a shape-only handle and charges time.
        qtb = analytic_executor.solver.ormqr(factors, analytic_executor.empty((100,)))
        assert qtb.shape == (10,)
        assert not qtb.is_numeric


# ---------------------------------------------------------------------------
# cuRAND
# ---------------------------------------------------------------------------
class TestRand:
    def test_standard_normal_statistics(self, executor):
        arr = executor.rand.standard_normal((20000,), scale=2.0)
        assert abs(float(np.mean(arr.data))) < 0.1
        assert float(np.std(arr.data)) == pytest.approx(2.0, rel=0.05)

    def test_uniform_integers_in_range(self, executor):
        arr = executor.rand.uniform_integers(0, 37, 5000)
        assert arr.data.min() >= 0
        assert arr.data.max() < 37

    def test_rademacher_bool_and_signed(self, executor):
        b = executor.rand.rademacher(1000, as_bool=True)
        assert b.data.dtype == np.bool_
        s = executor.rand.rademacher(1000, as_bool=False)
        assert set(np.unique(s.data)) <= {-1, 1}

    def test_sample_without_replacement_distinct(self, executor):
        arr = executor.rand.sample_without_replacement(100, 50)
        assert len(np.unique(arr.data)) == 50
        with pytest.raises(ValueError):
            executor.rand.sample_without_replacement(10, 11)

    def test_generation_charged_as_rng_kernels(self, executor):
        mark = executor.mark()
        executor.rand.standard_normal((1000, 10))
        records = executor.breakdown_since(mark).records
        assert any(r.name == "curand_normal" for r in records)
        assert executor.breakdown_since(mark).phase_seconds("Sketch gen") > 0

    def test_explicit_generator_overrides_executor_stream(self, executor):
        g1 = np.random.Generator(np.random.Philox(99))
        g2 = np.random.Generator(np.random.Philox(99))
        a = executor.rand.standard_normal((100,), generator=g1)
        b = executor.rand.standard_normal((100,), generator=g2)
        np.testing.assert_array_equal(a.data, b.data)

    def test_analytic_generation_charges_time_without_data(self, analytic_executor):
        arr = analytic_executor.rand.standard_normal((512, 4096))
        assert not arr.is_numeric
        assert analytic_executor.elapsed > 0
