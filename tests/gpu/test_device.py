"""Tests for the device specifications."""

import pytest

from repro.gpu.device import (
    A100_SXM4,
    H100_SXM5,
    TEST_DEVICE,
    DeviceSpec,
    get_device,
    register_device,
)


class TestPresets:
    def test_h100_matches_paper_hardware(self):
        assert "H100" in H100_SXM5.name
        assert H100_SXM5.memory_capacity == pytest.approx(80e9)
        # HBM3 bandwidth of the SXM5 part.
        assert 3.0e12 < H100_SXM5.memory_bandwidth < 3.5e12
        assert H100_SXM5.peak_flops_fp64 < H100_SXM5.peak_flops_fp32

    def test_a100_slower_than_h100(self):
        assert A100_SXM4.memory_bandwidth < H100_SXM5.memory_bandwidth
        assert A100_SXM4.peak_flops_fp64 < H100_SXM5.peak_flops_fp64

    def test_efficiency_constants_match_paper_figures(self):
        # Figure 3: Algorithm-2 CountSketch hits 50-60% of peak, SpMM ~20%,
        # SRHT 60-70%.
        assert 0.5 <= H100_SXM5.atomic_efficiency <= 0.6
        assert 0.15 <= H100_SXM5.spmm_efficiency <= 0.25
        assert 0.6 <= H100_SXM5.fwht_efficiency <= 0.7


class TestPeakFlops:
    def test_fp64_selected_for_8_byte_types(self):
        assert H100_SXM5.peak_flops(8) == H100_SXM5.peak_flops_fp64

    def test_fp32_selected_for_4_byte_types(self):
        assert H100_SXM5.peak_flops(4) == H100_SXM5.peak_flops_fp32


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_device("H100") is H100_SXM5
        assert get_device("a100-sxm4") is A100_SXM4
        assert get_device("test") is TEST_DEVICE

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("tpu-v5")

    def test_register_custom_device(self):
        custom = DeviceSpec(
            name="custom",
            memory_bandwidth=1e12,
            peak_flops_fp64=5e12,
            peak_flops_fp32=1e13,
            memory_capacity=16e9,
        )
        register_device("my-custom-gpu", custom)
        assert get_device("MY-CUSTOM-GPU") is custom


class TestOverrides:
    def test_with_overrides_returns_new_spec(self):
        modified = H100_SXM5.with_overrides(atomic_efficiency=0.9)
        assert modified.atomic_efficiency == 0.9
        assert H100_SXM5.atomic_efficiency != 0.9
        assert modified.memory_bandwidth == H100_SXM5.memory_bandwidth

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            H100_SXM5.atomic_efficiency = 1.0  # type: ignore[misc]
