"""Tests for the device memory tracker (OOM behaviour of Figures 2 and 5)."""

import numpy as np
import pytest

from repro.gpu.memory import (
    DeviceMemoryTracker,
    DeviceOutOfMemoryError,
    array_nbytes,
)


class TestBasicAccounting:
    def test_alloc_and_free(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.0)
        h = tracker.alloc(400.0, label="x")
        assert tracker.in_use == 400.0
        assert tracker.free == 600.0
        tracker.free_handle(h)
        assert tracker.in_use == 0.0

    def test_peak_tracks_high_water_mark(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.0)
        h1 = tracker.alloc(300.0)
        h2 = tracker.alloc(500.0)
        tracker.free_handle(h1)
        tracker.free_handle(h2)
        assert tracker.peak == 800.0
        assert tracker.in_use == 0.0

    def test_alloc_array_uses_dtype_size(self):
        tracker = DeviceMemoryTracker(1e9)
        tracker.alloc_array((100, 50), np.float64)
        assert tracker.in_use == 100 * 50 * 8

    def test_negative_alloc_rejected(self):
        tracker = DeviceMemoryTracker(1000.0)
        with pytest.raises(ValueError):
            tracker.alloc(-1.0)

    def test_double_free_raises(self):
        tracker = DeviceMemoryTracker(1000.0)
        h = tracker.alloc(10.0)
        tracker.free_handle(h)
        with pytest.raises(KeyError):
            tracker.free_handle(h)


class TestOutOfMemory:
    def test_oversized_allocation_raises(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.0)
        with pytest.raises(DeviceOutOfMemoryError):
            tracker.alloc(1001.0)

    def test_cumulative_allocations_raise(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.0)
        tracker.alloc(600.0)
        with pytest.raises(DeviceOutOfMemoryError):
            tracker.alloc(600.0)

    def test_reserve_fraction_reduces_usable_capacity(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.1)
        assert tracker.usable_capacity == pytest.approx(900.0)
        with pytest.raises(DeviceOutOfMemoryError):
            tracker.alloc(950.0)

    def test_error_carries_diagnostics(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.0)
        tracker.alloc(500.0)
        with pytest.raises(DeviceOutOfMemoryError) as excinfo:
            tracker.alloc(700.0, label="gaussian_sketch_matrix")
        err = excinfo.value
        assert err.requested == 700.0
        assert err.in_use == 500.0
        assert "gaussian_sketch_matrix" in str(err)

    def test_gaussian_sketch_at_paper_size_fits_but_is_large(self):
        """The explicit 2n x d Gaussian at d=2^22, n=256 occupies ~17 GB."""
        nbytes = array_nbytes((512, 1 << 22), np.float64)
        assert nbytes == pytest.approx(17.18e9, rel=0.01)

    def test_would_fit(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.0)
        tracker.alloc(800.0)
        assert tracker.would_fit(200.0)
        assert not tracker.would_fit(201.0)


class TestScopedAllocation:
    def test_scoped_frees_on_exit(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.0)
        with tracker.scoped(400.0, "tmp"):
            assert tracker.in_use == 400.0
        assert tracker.in_use == 0.0

    def test_scoped_frees_on_exception(self):
        tracker = DeviceMemoryTracker(1000.0, reserve_fraction=0.0)
        with pytest.raises(RuntimeError):
            with tracker.scoped(400.0, "tmp"):
                raise RuntimeError("boom")
        assert tracker.in_use == 0.0

    def test_reset_clears_everything(self):
        tracker = DeviceMemoryTracker(1000.0)
        tracker.alloc(100.0)
        tracker.reset()
        assert tracker.in_use == 0.0
        assert tracker.peak == 0.0
        assert tracker.live_allocations() == ()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DeviceMemoryTracker(0.0)
        with pytest.raises(ValueError):
            DeviceMemoryTracker(100.0, reserve_fraction=1.5)
