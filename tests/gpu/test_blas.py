"""Tests for the cuBLAS stand-in (GEMM/SYRK/GEMV/transpose)."""

import numpy as np
import pytest

from repro.gpu.kernels import KernelClass


class TestGemm:
    def test_gemm_matches_numpy(self, executor, rng):
        a = executor.to_device(rng.standard_normal((12, 7)))
        b = executor.to_device(rng.standard_normal((7, 5)))
        c = executor.blas.gemm(a, b)
        np.testing.assert_allclose(c.data, a.data @ b.data, rtol=1e-12)

    def test_gemm_transposes(self, executor, rng):
        a = executor.to_device(rng.standard_normal((7, 12)))
        b = executor.to_device(rng.standard_normal((7, 5)))
        c = executor.blas.gemm(a, b, trans_a=True)
        np.testing.assert_allclose(c.data, a.data.T @ b.data, rtol=1e-12)
        d = executor.to_device(rng.standard_normal((5, 7)))
        e = executor.blas.gemm(a, d, trans_a=True, trans_b=True)
        np.testing.assert_allclose(e.data, a.data.T @ d.data.T, rtol=1e-12)

    def test_gemm_alpha_scaling(self, executor, rng):
        a = executor.to_device(rng.standard_normal((3, 3)))
        b = executor.to_device(rng.standard_normal((3, 3)))
        c = executor.blas.gemm(a, b, alpha=2.5)
        np.testing.assert_allclose(c.data, 2.5 * a.data @ b.data, rtol=1e-12)

    def test_gemm_dimension_mismatch(self, executor):
        a = executor.empty((4, 3))
        b = executor.empty((5, 2))
        with pytest.raises(ValueError):
            executor.blas.gemm(a, b)

    def test_gemm_flop_accounting(self, executor):
        a = executor.empty((10, 20))
        b = executor.empty((20, 30))
        mark = executor.mark()
        executor.blas.gemm(a, b)
        record = executor.breakdown_since(mark).records[0]
        assert record.flops == pytest.approx(2 * 10 * 20 * 30)

    def test_gemm_output_reuse(self, executor, rng):
        a = executor.to_device(rng.standard_normal((4, 4)))
        b = executor.to_device(rng.standard_normal((4, 4)))
        out = executor.empty((4, 4))
        result = executor.blas.gemm(a, b, out=out)
        assert result is out
        with pytest.raises(ValueError):
            executor.blas.gemm(a, b, out=executor.empty((3, 3)))


class TestGramAndSyrk:
    def test_gram_matches_numpy(self, executor, rng):
        a = executor.to_device(rng.standard_normal((50, 8)))
        g = executor.blas.gram(a)
        np.testing.assert_allclose(g.data, a.data.T @ a.data, rtol=1e-12)

    def test_syrk_matches_and_is_symmetric(self, executor, rng):
        a = executor.to_device(rng.standard_normal((50, 8)))
        g = executor.blas.syrk(a)
        np.testing.assert_allclose(g.data, a.data.T @ a.data, rtol=1e-12)
        np.testing.assert_allclose(g.data, g.data.T)

    def test_syrk_slower_than_gemm_gram_in_model(self, analytic_executor):
        """The paper: SYRK performs worse than GEMM in practice despite fewer flops."""
        a = analytic_executor.empty((1 << 20, 256))
        mark = analytic_executor.mark()
        analytic_executor.blas.gram(a, use_syrk=False)
        gemm_time = analytic_executor.elapsed_since(mark)
        mark = analytic_executor.mark()
        analytic_executor.blas.gram(a, use_syrk=True)
        syrk_time = analytic_executor.elapsed_since(mark)
        assert syrk_time > gemm_time * 0.9  # SYRK never meaningfully faster


class TestGemvAndVectors:
    def test_gemv(self, executor, rng):
        a = executor.to_device(rng.standard_normal((9, 4)))
        x = executor.to_device(rng.standard_normal(4))
        y = executor.blas.gemv(a, x)
        np.testing.assert_allclose(y.data, a.data @ x.data, rtol=1e-12)

    def test_gemv_transposed(self, executor, rng):
        a = executor.to_device(rng.standard_normal((9, 4)))
        x = executor.to_device(rng.standard_normal(9))
        y = executor.blas.gemv(a, x, trans_a=True)
        np.testing.assert_allclose(y.data, a.data.T @ x.data, rtol=1e-12)

    def test_gemv_mismatch(self, executor):
        with pytest.raises(ValueError):
            executor.blas.gemv(executor.empty((9, 4)), executor.empty((5,)))

    def test_axpy_and_scale(self, executor, rng):
        x = executor.to_device(rng.standard_normal(6))
        y = executor.to_device(rng.standard_normal(6))
        expected = y.data + 0.5 * x.data
        executor.blas.axpy(0.5, x, y)
        np.testing.assert_allclose(y.data, expected, rtol=1e-12)
        executor.blas.scale(2.0, y)
        np.testing.assert_allclose(y.data, 2 * expected, rtol=1e-12)

    def test_axpy_shape_mismatch(self, executor):
        with pytest.raises(ValueError):
            executor.blas.axpy(1.0, executor.empty((3,)), executor.empty((4,)))

    def test_norm2(self, executor):
        x = executor.to_device(np.array([3.0, 4.0]))
        assert executor.blas.norm2(x) == pytest.approx(5.0)


class TestTranspose:
    def test_transpose_values_and_order(self, executor, rng):
        a = executor.to_device(rng.standard_normal((5, 3)), order="C")
        at = executor.blas.transpose(a)
        assert at.shape == (3, 5)
        assert at.order == "F"
        np.testing.assert_array_equal(at.data, a.data.T)

    def test_transpose_requires_2d(self, executor):
        with pytest.raises(ValueError):
            executor.blas.transpose(executor.empty((5,)))

    def test_transpose_charges_full_traffic(self, analytic_executor):
        a = analytic_executor.empty((1000, 1000))
        mark = analytic_executor.mark()
        analytic_executor.blas.transpose(a)
        record = analytic_executor.breakdown_since(mark).records[0]
        assert record.bytes_moved == pytest.approx(2 * a.nbytes)
