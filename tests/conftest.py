"""Shared fixtures for the test-suite.

Most tests need a numeric executor with memory tracking disabled (so shapes
can be chosen for test speed rather than device realism), a seeded NumPy
generator, and a small random matrix.  Keeping them here avoids repeating the
setup in every module.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.gpu.device import TEST_DEVICE, H100_SXM5
from repro.gpu.executor import GPUExecutor

#: Module-name prefixes auto-marked ``planner`` (see pyproject.toml markers);
#: mirrors the hook in benchmarks/conftest.py so the whole routing subset --
#: unit and benchmark alike -- runs with ``pytest -m planner``.
_PLANNER_PREFIXES = ("test_registry", "test_planner", "test_solver_routing")

#: Module-name prefixes auto-marked ``streaming`` (same pattern: the online
#: engine's unit, serving-session and benchmark modules all run with
#: ``pytest -m streaming``).
_STREAMING_PREFIXES = ("test_streaming",)

#: Module-name prefixes auto-marked ``runtime`` (concurrent serving runtime;
#: mirrors benchmarks/conftest.py so ``pytest -m runtime`` runs the unit
#: tests and the acceptance benchmark together).
_RUNTIME_PREFIXES = ("test_runtime", "test_concurrent_runtime")

#: Module-name prefixes auto-marked ``obs`` (tracing, metrics registry,
#: exporters, perf-trajectory record; ``pytest -m obs`` runs the subset).
_OBS_PREFIXES = (
    "test_obs", "test_metrics", "test_trace", "test_exporters", "test_record_bench",
)

#: Module-name prefixes auto-marked ``slo`` (closed-loop observability:
#: cost calibration, SLO burn-rate engine, bench comparison; mirrors
#: benchmarks/conftest.py so ``pytest -m slo`` runs the whole subset).
_SLO_PREFIXES = ("test_slo", "test_calibrat", "test_compare_bench")

#: Module-name prefixes auto-marked ``durability`` (checkpoint/WAL codec,
#: crash recovery, fault injection, session TTL/eviction; mirrors
#: benchmarks/conftest.py so ``pytest -m durability`` runs the subset).
_DURABILITY_PREFIXES = ("test_durability",)

#: Module-name prefixes auto-marked ``frequency`` (frequency-analytics
#: vertical: core sketches, eps-phi property tests, serving sessions,
#: acceptance benchmark; mirrors benchmarks/conftest.py so
#: ``pytest -m frequency`` runs the subset).
_FREQUENCY_PREFIXES = ("test_frequency",)


def pytest_collection_modifyitems(items):
    """Auto-apply the ``planner``/``streaming``/``runtime``/``obs``/``slo``/``durability``/``frequency`` markers by module prefix."""
    for item in items:
        try:
            name = pathlib.Path(str(item.fspath)).name
        except OSError:  # pragma: no cover - defensive
            continue
        if name.startswith(_PLANNER_PREFIXES):
            item.add_marker(pytest.mark.planner)
        if name.startswith(_STREAMING_PREFIXES):
            item.add_marker(pytest.mark.streaming)
        if name.startswith(_RUNTIME_PREFIXES):
            item.add_marker(pytest.mark.runtime)
        if name.startswith(_OBS_PREFIXES):
            item.add_marker(pytest.mark.obs)
        if name.startswith(_SLO_PREFIXES):
            item.add_marker(pytest.mark.slo)
        if name.startswith(_DURABILITY_PREFIXES):
            item.add_marker(pytest.mark.durability)
        if name.startswith(_FREQUENCY_PREFIXES):
            item.add_marker(pytest.mark.frequency)


@pytest.fixture
def executor() -> GPUExecutor:
    """Numeric executor on the paper's H100 with unlimited memory."""
    return GPUExecutor(H100_SXM5, numeric=True, seed=1234, track_memory=False)


@pytest.fixture
def analytic_executor() -> GPUExecutor:
    """Analytic (shape-only) executor on the paper's H100."""
    return GPUExecutor(H100_SXM5, numeric=False, seed=1234, track_memory=False)


@pytest.fixture
def small_executor() -> GPUExecutor:
    """Numeric executor on the tiny test device (1 GB) with memory tracking."""
    return GPUExecutor(TEST_DEVICE, numeric=True, seed=1234, track_memory=True)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy generator for building test inputs."""
    return np.random.default_rng(20240614)


@pytest.fixture
def tall_matrix(rng) -> np.ndarray:
    """A 4096 x 16 random Gaussian matrix (tall and skinny, like the paper's A)."""
    return rng.standard_normal((4096, 16))
