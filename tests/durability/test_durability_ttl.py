"""Session lifetime policies: TTL sweeps, capacity caps, passivation.

The eviction contract has two halves:

* **resource half** -- an evicted session releases its
  :class:`~repro.serving.cache.OperatorCache` pin immediately, the
  ``max_sessions`` cap holds under churn (LRU victim), and every eviction
  is visible in telemetry labelled with its reason;
* **durability half** -- with a durability config an evicted session is
  *passivated* (final checkpoint, resurrect-on-touch, identical answers);
  without one, eviction is terminal and a later touch raises ``KeyError``
  exactly like a closed session.

TTL idleness runs on the session's own shard clock (the simulated timeline
all serving latencies live on), so the tests age sessions by doing real
work on their shard, not by sleeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability import DurabilityConfig, MemoryCheckpointStore
from repro.serving import ServerConfig, SketchServer
from repro.serving.streaming import stream_session_cache_key

pytestmark = pytest.mark.serving

N = 8


def _open(server: SketchServer) -> int:
    return server.open_stream(N, mode="sliding", bucket_rows=64,
                              window_buckets=3, detector=False)


def _feed(server: SketchServer, sid: int, *, seed: int = 0, batches: int = 1):
    rng = np.random.default_rng(seed)
    for _ in range(batches):
        rows = rng.standard_normal((32, N))
        server.append_rows(sid, rows, rows @ np.arange(1.0, N + 1))


def _cache_key(server: SketchServer, sid: int):
    solver = server.streams.session(sid).solver
    return stream_session_cache_key(sid, solver.n + 1, solver.k, solver.seed)


# ---------------------------------------------------------------------------
# config surface
# ---------------------------------------------------------------------------
def test_lifetime_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(max_sessions=0)
    with pytest.raises(ValueError):
        ServerConfig(session_ttl_seconds=0.0)
    with pytest.raises(TypeError):
        ServerConfig(durability=object())


# ---------------------------------------------------------------------------
# capacity cap: LRU victim, typed terminal behavior without durability
# ---------------------------------------------------------------------------
def test_capacity_cap_evicts_lru_and_releases_cache_pin():
    server = SketchServer(shards=1, seed=0, max_sessions=2)
    first, second = _open(server), _open(server)
    _feed(server, first, seed=1)  # first is now the *most* recently used
    victim_key = _cache_key(server, second)
    assert server.cache.peek(victim_key) is not None

    third = _open(server)  # over cap: second (LRU) must make room
    assert len(server.streams) == 2
    assert second not in server.streams and first in server.streams and third in server.streams
    assert server.cache.peek(victim_key) is None  # pin released on eviction

    # Without durability the eviction is terminal, like a closed session.
    with pytest.raises(KeyError):
        server.query_solution(second)
    with pytest.raises(KeyError):
        _feed(server, second)

    counts = server.telemetry.eviction_counts()
    assert counts == {"capacity": 1}
    assert server.telemetry.snapshot()["stream_evicted_capacity"] == 1.0


def test_ttl_sweep_runs_on_the_shard_clock():
    server = SketchServer(shards=1, seed=0, session_ttl_seconds=1e-9)
    idle, busy = _open(server), _open(server)
    idle_key = _cache_key(server, idle)
    # Age `idle` by doing real (simulated) work on the shared shard clock.
    _feed(server, busy, seed=2, batches=4)
    assert server.streams.sweep_expired() == 1
    assert idle not in server.streams and busy in server.streams
    assert server.cache.peek(idle_key) is None
    assert server.telemetry.eviction_counts() == {"ttl": 1}

    # Sweeps also run implicitly at every open(): age `busy`, open a new one.
    third = _open(server)
    _feed(server, third, seed=3, batches=4)
    _open(server)  # admission-side sweep fires here
    assert busy not in server.streams and third in server.streams
    assert server.telemetry.eviction_counts() == {"ttl": 2}


# ---------------------------------------------------------------------------
# durable half: passivation and resurrection
# ---------------------------------------------------------------------------
def _durable_server(**overrides) -> SketchServer:
    return SketchServer(
        shards=1, seed=0,
        durability=DurabilityConfig(store=MemoryCheckpointStore()),
        **overrides,
    )


def test_durable_eviction_passivates_and_resurrects_identically():
    server = _durable_server()
    sid = _open(server)
    _feed(server, sid, seed=4, batches=3)
    expected = server.query_solution(sid).x
    key = _cache_key(server, sid)

    server.streams.evict(sid, reason="manual")
    assert sid not in server.streams
    assert server.streams.passivated == (sid,)
    assert server.cache.peek(key) is None  # pin released while passivated
    assert server.telemetry.passivated_sessions == 1

    # Touching a passivated session resurrects it transparently...
    response = server.query_solution(sid)
    np.testing.assert_array_equal(response.x, expected)
    assert sid in server.streams and server.streams.passivated == ()
    assert server.telemetry.passivated_sessions == 0
    assert server.cache.peek(key) is not None  # ...and re-pins its operator
    assert server.telemetry.restores == 1

    # Appends keep working across a passivation cycle too.
    server.streams.evict(sid, reason="manual")
    _feed(server, sid, seed=5)
    assert server.query_solution(sid).x is not None


def test_durable_capacity_churn_loses_no_session():
    server = _durable_server(max_sessions=2)
    sessions = []
    for seed in range(4):  # opens 4 sessions through a cap of 2
        sid = _open(server)
        _feed(server, sid, seed=seed)
        sessions.append((sid, server.query_solution(sid).x))
    assert len(server.streams) == 2
    assert len(server.streams.passivated) == 2
    assert server.telemetry.eviction_counts() == {"capacity": 2}

    # Every session -- live or passivated -- still answers, identically.
    for sid, expected in sessions:
        np.testing.assert_array_equal(server.query_solution(sid).x, expected)

    # close() is terminal even for passivated sessions: durable state gone.
    store = server.config.durability.store
    for sid, _ in sessions:
        server.close_stream(sid)
    assert store.keys() == []
    assert server.streams.passivated == ()


def test_ttl_expiry_of_durable_session_is_recoverable():
    server = _durable_server(session_ttl_seconds=1e-9)
    idle, busy = _open(server), _open(server)
    _feed(server, idle, seed=6)
    expected = server.query_solution(idle).x
    _feed(server, busy, seed=7, batches=4)  # ages `idle` past its TTL

    assert server.streams.sweep_expired() == 1
    assert server.streams.passivated == (idle,)
    snapshot = server.telemetry.snapshot()
    assert snapshot["stream_evicted_ttl"] == 1.0
    assert snapshot["durability_passivated_sessions"] == 1.0

    np.testing.assert_array_equal(server.query_solution(idle).x, expected)
