"""Seeded property-based round-trip tests for the durability codec.

The durability contract is *exact identity*: snapshot -> bytes -> restore
must reproduce the engine bit for bit, for every window mode, so that a
recovered session is indistinguishable from one that never died.  Three
layers are pinned here, each over hypothesis-driven seed ranges (with
``derandomize=True``, so the suite is deterministic run to run):

1. **Record codec**: ``encode_record`` / ``decode_record`` round-trip
   arbitrary metadata and float arrays, and encoding is canonical (equal
   state -> equal bytes), which is what makes byte-equality a usable
   identity check everywhere else.
2. **Engine snapshots**: a :class:`~repro.streaming.solver.StreamingSolver`
   in each window mode (landmark / sliding / decay / fd) serialises and
   restores to the *same bytes*, and -- the part recovery actually relies
   on -- the restored engine folds future batches and solves identically
   to the original (hashed row identity is a pure function of the restored
   global index and operator seed).
3. **Companion state**: WAL batch frames and the drift detector's EWMA
   state round-trip exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.codec import decode_record, encode_record
from repro.durability.session import (
    SESSION_KIND,
    decode_wal_batch,
    deserialize_session,
    encode_wal_batch,
    serialize_session,
)
from repro.streaming.drift import DriftDetector, DriftDetectorConfig
from repro.streaming.solver import StreamingSolver

N = 8
BATCH = 48

SEEDS = st.integers(min_value=0, max_value=10_000)

#: One constructor-kwargs set per window mode, sized for test speed.
MODES = {
    "landmark": dict(mode="landmark"),
    "sliding": dict(mode="sliding", bucket_rows=64, window_buckets=3),
    "decay": dict(mode="decay", decay=0.99),
    "fd": dict(mode="fd"),
}


def _batches(seed: int, count: int):
    rng = np.random.default_rng(seed)
    x_true = np.linspace(-1.0, 1.0, N)
    for _ in range(count):
        rows = rng.standard_normal((BATCH, N))
        yield rows, rows @ x_true + 0.01 * rng.standard_normal(BATCH)


def _build(mode: str, seed: int, *, detector: bool = False) -> StreamingSolver:
    solver = StreamingSolver(N, seed=seed, detector=detector, **MODES[mode])
    for rows, targets in _batches(seed, 5):
        solver.ingest(rows, targets)
    return solver


# ---------------------------------------------------------------------------
# 1. record codec round-trip and canonical encoding
# ---------------------------------------------------------------------------
@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_record_codec_roundtrip_and_canonical_bytes(seed):
    rng = np.random.default_rng(seed)
    meta = {"seed": seed, "name": f"record-{seed}", "nested": {"flag": True, "x": 1.5}}
    arrays = {
        "a": rng.standard_normal((3, 5)),
        "b": rng.integers(0, 100, size=7).astype(np.int64),
    }
    blob = encode_record("test.kind", meta, arrays)
    record = decode_record(blob, expect_kind="test.kind")
    assert record.kind == "test.kind"
    assert record.meta == meta
    assert set(record.arrays) == {"a", "b"}
    for name in arrays:
        assert record.arrays[name].dtype == arrays[name].dtype
        np.testing.assert_array_equal(record.arrays[name], arrays[name])
    # Canonical: re-encoding the decoded state reproduces the exact bytes.
    assert encode_record("test.kind", record.meta, record.arrays) == blob


# ---------------------------------------------------------------------------
# 2. engine snapshot identity, all window modes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mode", sorted(MODES))
@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_session_roundtrip_is_exact(mode, seed):
    solver = _build(mode, seed)
    meta = {"session_id": 0, "durable_seq": 5, "queries": 0}
    blob = serialize_session(solver, meta)
    assert decode_record(blob).kind == SESSION_KIND

    restored, restored_meta = deserialize_session(blob)
    assert restored_meta == meta
    assert restored.n == solver.n and restored.k == solver.k
    assert restored.seed == solver.seed
    assert restored.state.rows_total == solver.state.rows_total
    # Exact identity: the restored engine re-serialises to the same bytes.
    assert serialize_session(restored, meta) == blob


@pytest.mark.parametrize("mode", sorted(MODES))
@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_restored_engine_replays_identically(mode, seed):
    """Folding the same future batches must be indistinguishable post-restore.

    This is the property crash recovery rests on: WAL batches replayed into
    a restored engine hash to the same row identities (global index and
    operator seed are both part of the snapshot), so recovery converges on
    the state the dead process would have had.
    """
    solver = _build(mode, seed)
    restored, _ = deserialize_session(serialize_session(solver))
    for rows, targets in _batches(seed + 1, 3):
        solver.ingest(rows, targets)
        restored.ingest(rows, targets)
    assert serialize_session(restored) == serialize_session(solver)
    a = solver.solution()
    b = restored.solution()
    assert a.x is not None and b.x is not None
    np.testing.assert_array_equal(a.x, b.x)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_cached_solution_survives_roundtrip(seed):
    """A solved engine restores with its solution; querying stays lazy."""
    solver = _build("sliding", seed)
    before = solver.solution()  # forces the lazy solve, caches the result
    restored, _ = deserialize_session(serialize_session(solver))
    after = restored.solution()
    np.testing.assert_array_equal(before.x, after.x)
    assert restored.resolve_count == solver.resolve_count  # no re-solve needed


# ---------------------------------------------------------------------------
# 3. companion state: WAL batches and the drift detector
# ---------------------------------------------------------------------------
@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_wal_batch_roundtrip(seed):
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal((17, N))
    targets = rng.standard_normal(17)
    out_seq, out_rows, out_targets = decode_wal_batch(
        encode_wal_batch(seed, rows, targets)
    )
    assert out_seq == seed
    np.testing.assert_array_equal(out_rows, rows)
    np.testing.assert_array_equal(out_targets, targets)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_drift_detector_state_roundtrip(seed):
    solver = _build("sliding", seed, detector=True)
    detector = solver.detector
    assert detector is not None
    state = detector.state_dict()
    clone = DriftDetector.from_state_dict(state)
    assert clone.state_dict() == state
    assert isinstance(clone.config, DriftDetectorConfig)
    # And through the full session round-trip as well.
    restored, _ = deserialize_session(serialize_session(solver))
    assert restored.detector is not None
    assert restored.detector.state_dict() == state
