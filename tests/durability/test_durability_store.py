"""Checkpoint stores, the record codec's typed errors, and fault injection.

Every way storage can betray the durability layer gets a test with an
injected fault (``tests/faults.py``) and an asserted *graceful* outcome:

* structural damage to a record raises the matching typed
  :class:`~repro.durability.codec.DurabilityError` subclass -- truncation,
  checksum, schema -- never a garbage decode;
* a torn or bit-flipped WAL tail costs exactly the tail: replay keeps the
  valid prefix and reports why it stopped;
* at the server level, a corrupt checkpoint turns into a
  ``RestoreReport.failed`` entry plus a fresh-session fallback (the server
  keeps serving; the damaged session is refused, not served wrong), and a
  torn WAL restores to precisely the state the surviving prefix describes.

Both store backends -- in-memory and fsync'd directory -- satisfy the same
contract, so the whole module is parametrized over them.
"""

from __future__ import annotations

import numpy as np
import pytest
from faults import (
    corrupt_checkpoint,
    corrupt_wal_frame,
    flip_byte,
    tear_wal_tail,
    torn_tail,
    truncate_checkpoint,
)

from repro.durability import (
    ChecksumError,
    DirectoryCheckpointStore,
    DurabilityConfig,
    MemoryCheckpointStore,
    SchemaError,
    TruncatedRecordError,
)
from repro.durability.codec import MAGIC, decode_record, encode_record
from repro.durability.wal import frame, replay_wal
from repro.serving import SketchServer

pytestmark = pytest.mark.serving


@pytest.fixture(params=["memory", "directory"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryCheckpointStore()
    return DirectoryCheckpointStore(tmp_path / "ckpt")


def _record(seed: int = 0) -> bytes:
    rng = np.random.default_rng(seed)
    return encode_record(
        "test.kind", {"seed": seed}, {"a": rng.standard_normal((4, 3))}
    )


# ---------------------------------------------------------------------------
# store contract
# ---------------------------------------------------------------------------
def test_store_checkpoint_wal_delete_roundtrip(store):
    assert store.read_checkpoint("session-1") is None
    assert store.read_wal("session-1") == b""

    store.write_checkpoint("session-1", b"snapshot")
    store.append_wal("session-1", b"aa")
    store.append_wal("session-1", b"bb")
    assert store.read_checkpoint("session-1") == b"snapshot"
    assert store.read_wal("session-1") == b"aabb"
    assert store.keys() == ["session-1"]

    store.reset_wal("session-1")
    assert store.read_wal("session-1") == b""
    assert store.read_checkpoint("session-1") == b"snapshot"  # untouched

    store.delete("session-1")
    assert store.read_checkpoint("session-1") is None
    assert store.keys() == []


def test_store_rejects_unsafe_keys(store):
    for bad in ("", "a/b", "..", "a b", "a\x00b"):
        with pytest.raises(ValueError):
            store.write_checkpoint(bad, b"x")


def test_directory_store_survives_reopen(tmp_path):
    first = DirectoryCheckpointStore(tmp_path / "ckpt")
    first.write_checkpoint("session-0", b"snap")
    first.append_wal("session-0", b"tail")
    reopened = DirectoryCheckpointStore(tmp_path / "ckpt")
    assert reopened.read_checkpoint("session-0") == b"snap"
    assert reopened.read_wal("session-0") == b"tail"
    assert reopened.keys() == ["session-0"]


def test_durability_config_validation(store):
    with pytest.raises(TypeError):
        DurabilityConfig(store=object())
    with pytest.raises(ValueError):
        DurabilityConfig(store=store, checkpoint_interval_batches=0)


# ---------------------------------------------------------------------------
# codec typed errors: every corruption is classified, never mis-decoded
# ---------------------------------------------------------------------------
def test_truncated_record_is_typed():
    blob = _record()
    for keep in (0, 3, len(blob) // 2, len(blob) - 1):
        with pytest.raises(TruncatedRecordError):
            decode_record(blob[:keep])


def test_flipped_payload_byte_is_a_checksum_error():
    with pytest.raises(ChecksumError):
        decode_record(flip_byte(_record()))


def test_foreign_magic_and_trailing_bytes_are_schema_errors():
    with pytest.raises(SchemaError):
        decode_record(b"JUNK" + _record()[4:])
    with pytest.raises(SchemaError):
        decode_record(_record() + b"extra")
    with pytest.raises(SchemaError):
        decode_record(_record(), expect_kind="other.kind")


def test_future_schema_version_is_refused():
    blob = bytearray(_record())
    blob[len(MAGIC)] = 0xFF  # bump the little-endian u16 version field
    with pytest.raises(SchemaError):
        decode_record(bytes(blob))


# ---------------------------------------------------------------------------
# WAL replay: a damaged tail costs exactly the tail
# ---------------------------------------------------------------------------
def test_torn_wal_tail_keeps_the_valid_prefix():
    payloads = [b"first", b"second", b"third"]
    blob = b"".join(frame(p) for p in payloads)
    for drop in (1, len(b"third"), len(frame(b"third")) - 1):
        replay = replay_wal(torn_tail(blob, drop))
        assert replay.payloads == [b"first", b"second"]
        assert not replay.clean and replay.reason == "torn"
        assert replay.dropped_bytes == len(frame(b"third")) - drop


def test_corrupt_wal_frame_stops_replay_at_the_flip():
    blob = frame(b"first") + frame(b"second")
    replay = replay_wal(flip_byte(blob))  # flip lands inside "second"
    assert replay.payloads == [b"first"]
    assert replay.reason == "checksum"
    with pytest.raises(ChecksumError):
        replay_wal(flip_byte(blob), strict=True)


# ---------------------------------------------------------------------------
# server-level graceful degradation
# ---------------------------------------------------------------------------
N = 8


def _crashed_session(store, *, batches: int = 7, interval: int = 5):
    """A durable session's store state after a kill with a live WAL tail."""
    server = SketchServer(
        shards=1, seed=2,
        durability=DurabilityConfig(store=store, checkpoint_interval_batches=interval),
    )
    sid = server.open_stream(N, mode="sliding", bucket_rows=64,
                             window_buckets=3, detector=False)
    rng = np.random.default_rng(0)
    fed = []
    for _ in range(batches):
        rows = rng.standard_normal((32, N))
        targets = rows @ np.arange(1.0, N + 1)
        server.append_rows(sid, rows, targets)
        fed.append((rows, targets))
    return server, sid, fed


@pytest.mark.parametrize("damage", ["bitflip", "truncate"])
def test_corrupt_checkpoint_fails_typed_and_falls_back_fresh(store, damage):
    server, sid, _ = _crashed_session(store)
    del server
    if damage == "bitflip":
        corrupt_checkpoint(store, f"session-{sid}")
        expected = "ChecksumError"
    else:
        truncate_checkpoint(store, f"session-{sid}", keep=10)
        expected = "TruncatedRecordError"

    recovered = SketchServer(
        shards=1, seed=2, durability=DurabilityConfig(store=store)
    )
    report = recovered.restore()
    assert not report.ok
    assert report.restored == {}
    assert report.failed[sid].startswith(expected)
    assert recovered.telemetry.corrupt_checkpoints == 1

    # Never a wrong answer: the damaged session is refused outright...
    with pytest.raises(KeyError):
        recovered.query_solution(sid)
    # ...and the fallback is a working server: fresh sessions serve fine.
    fresh = recovered.open_stream(N, mode="sliding", bucket_rows=64,
                                  window_buckets=3, detector=False)
    rows = np.random.default_rng(1).standard_normal((32, N))
    recovered.append_rows(fresh, rows, rows @ np.arange(1.0, N + 1))
    assert recovered.query_solution(fresh).x is not None


def test_torn_wal_tail_restores_exactly_the_surviving_prefix(store):
    server, sid, fed = _crashed_session(store, batches=8, interval=5)
    del server
    tear_wal_tail(store, f"session-{sid}", drop=3)  # tears the last frame

    recovered = SketchServer(
        shards=1, seed=2, durability=DurabilityConfig(store=store)
    )
    report = recovered.restore()
    # 8 appends, checkpoint at 5, WAL held batches 6-8; the torn frame costs
    # exactly the last one.
    assert report.ok and report.restored == {sid: 2}
    assert recovered.telemetry.wal_truncations == 1

    # The recovered answer equals a clean server fed only the surviving
    # 7 batches -- degraded by exactly the acknowledged-but-torn tail,
    # never wrong about what it kept.
    reference = SketchServer(shards=1, seed=2)
    ref_sid = reference.open_stream(N, mode="sliding", bucket_rows=64,
                                    window_buckets=3, detector=False)
    for rows, targets in fed[:-1]:
        reference.append_rows(ref_sid, rows, targets)
    np.testing.assert_array_equal(
        recovered.query_solution(sid).x, reference.query_solution(ref_sid).x
    )


def test_corrupt_wal_frame_is_survivable_too(store):
    server, sid, fed = _crashed_session(store, batches=7, interval=5)
    del server
    corrupt_wal_frame(store, f"session-{sid}")  # latent flip in the last frame

    recovered = SketchServer(
        shards=1, seed=2, durability=DurabilityConfig(store=store)
    )
    report = recovered.restore()
    assert report.ok and report.restored == {sid: 1}  # kept batch 6, lost 7
    assert recovered.telemetry.wal_truncations == 1
    assert recovered.query_solution(sid).x is not None
