"""Crash-recovery acceptance: kill mid-stream, restore, answer within bound.

The durability tentpole's end-to-end contract, at the same problem scale as
``benchmarks/test_streaming.py``:

1. a durable sliding-window session killed at a *randomized batch boundary*
   (so the crash usually lands between interval checkpoints, with a live
   WAL tail) restores from its last checkpoint plus WAL replay, and the
   recovered query's relative residual on the window's kept rows stays
   within 1.2x of a from-scratch sketch-and-solve over those rows;
2. recovery is in fact *exact*: the restored server answers bit-identically
   to a twin server that never crashed (hashed row identity is a pure
   function of the restored global index and operator seed);
3. the replay ledger adds up -- batches replayed equal batches appended
   since the last interval checkpoint, and land in telemetry;
4. the concurrent runtime's ``checkpoint()`` drains in-flight work before
   snapshotting, and the runtime keeps serving afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.countsketch import CountSketch
from repro.durability import DurabilityConfig, MemoryCheckpointStore
from repro.gpu.executor import GPUExecutor
from repro.linalg.lstsq import relative_residual, sketch_and_solve
from repro.serving import AsyncSketchServer, SketchServer

N = 16
BATCH = 256
BUCKET_ROWS = 1024
WINDOW_BUCKETS = 4
CHECKPOINT_INTERVAL = 5  # coprime with the 4-batch bucket turnover

pytestmark = pytest.mark.serving


def _stream(seed: int, count: int):
    rng = np.random.default_rng(seed)
    x_true = np.linspace(-1.0, 1.0, N)
    out = []
    for _ in range(count):
        rows = rng.standard_normal((BATCH, N))
        out.append((rows, rows @ x_true + 0.05 * rng.standard_normal(BATCH)))
    return out


def _durable_server(store: MemoryCheckpointStore) -> SketchServer:
    return SketchServer(
        shards=1,
        seed=3,
        durability=DurabilityConfig(store=store, checkpoint_interval_batches=CHECKPOINT_INTERVAL),
    )


def _open_sliding(server: SketchServer) -> int:
    return server.open_stream(
        N,
        mode="sliding",
        bucket_rows=BUCKET_ROWS,
        window_buckets=WINDOW_BUCKETS,
        detector=False,
    )


@pytest.mark.parametrize("crash_seed", [0, 1, 2])
def test_kill_midstream_restore_query_within_1p2x_bound(crash_seed):
    # Randomize the kill point across parametrized runs: always past one
    # full window (>= 16 batches) so the ring has turned over, otherwise
    # anywhere -- bucket-aligned or not, checkpoint-aligned or not.
    crash_at = int(np.random.default_rng(100 + crash_seed).integers(17, 25))
    batches = _stream(seed=7, count=crash_at)

    store = MemoryCheckpointStore()
    server = _durable_server(store)
    sid = _open_sliding(server)
    for rows, targets in batches:
        server.append_rows(sid, rows, targets)
    del server  # crash: no save(), no close -- only the store survives

    recovered = _durable_server(store)
    report = recovered.restore()
    assert report.ok and report.restored == {sid: crash_at % CHECKPOINT_INTERVAL}
    assert recovered.telemetry.replayed_batches == crash_at % CHECKPOINT_INTERVAL

    response = recovered.query_solution(sid)
    assert response.x is not None

    # Reference: from-scratch sketch-and-solve over exactly the rows the
    # restored window retained (the window edge falls on a batch boundary
    # because BATCH divides BUCKET_ROWS).
    window_rows = recovered.streams.session(sid).solver.state.rows_in_window()
    assert window_rows % BATCH == 0
    kept = batches[-(window_rows // BATCH):]
    a_win = np.vstack([rows for rows, _ in kept])
    b_win = np.concatenate([targets for _, targets in kept])
    streaming_resid = relative_residual(a_win, b_win, response.x)

    executor = GPUExecutor(numeric=True, seed=0, track_memory=False)
    sketch = CountSketch(
        a_win.shape[0], min(4 * N * N, a_win.shape[0]), executor=executor, seed=0
    )
    scratch = sketch_and_solve(a_win, b_win, sketch, executor=executor)
    ratio = streaming_resid / scratch.relative_residual
    assert ratio <= 1.2, (
        f"restored residual {ratio:.3f}x the from-scratch solve "
        f"(crash at batch {crash_at})"
    )


def test_recovery_is_exact_vs_never_crashed_twin():
    crash_at = 18
    batches = _stream(seed=11, count=crash_at)

    store = MemoryCheckpointStore()
    crashed = _durable_server(store)
    sid = _open_sliding(crashed)
    twin = SketchServer(shards=1, seed=3)
    twin_sid = _open_sliding(twin)
    assert twin_sid == sid  # same id stream, same session seed

    for rows, targets in batches:
        crashed.append_rows(sid, rows, targets)
        twin.append_rows(twin_sid, rows, targets)
    del crashed

    recovered = _durable_server(store)
    assert recovered.restore().ok
    np.testing.assert_array_equal(
        recovered.query_solution(sid).x, twin.query_solution(twin_sid).x
    )

    # The recovered session keeps streaming: fold one more batch into both
    # and they still agree exactly.
    (rows, targets), = _stream(seed=12, count=1)
    recovered.append_rows(sid, rows, targets)
    twin.append_rows(twin_sid, rows, targets)
    np.testing.assert_array_equal(
        recovered.query_solution(sid).x, twin.query_solution(twin_sid).x
    )


def test_restore_is_idempotent_and_survives_a_second_crash():
    """Restore re-checkpoints immediately, so crash-restore-crash-restore works."""
    batches = _stream(seed=5, count=7)
    store = MemoryCheckpointStore()
    server = _durable_server(store)
    sid = _open_sliding(server)
    for rows, targets in batches:
        server.append_rows(sid, rows, targets)
    expected = server.query_solution(sid).x
    del server

    first = _durable_server(store)
    assert first.restore().ok
    del first  # second crash, immediately after recovery

    second = _durable_server(store)
    report = second.restore()
    assert report.ok and report.restored == {sid: 0}  # tail was re-checkpointed
    np.testing.assert_array_equal(second.query_solution(sid).x, expected)
    # A third restore() call on the same process is a no-op, not a re-ingest.
    assert second.restore().restored == {}


def test_async_runtime_drains_before_checkpoint_and_keeps_serving():
    store = MemoryCheckpointStore()
    runtime = AsyncSketchServer(
        shards=1,
        workers=2,
        queue_depth=64,
        seed=3,
        durability=DurabilityConfig(store=store, checkpoint_interval_batches=CHECKPOINT_INTERVAL),
    )
    try:
        sid = runtime.open_stream(
            N, mode="sliding", bucket_rows=BUCKET_ROWS,
            window_buckets=WINDOW_BUCKETS, detector=False,
        )
        futures = [
            runtime.append_rows(sid, rows, targets)
            for rows, targets in _stream(seed=9, count=6)
        ]
        sizes = runtime.checkpoint()  # drain -> quiesce -> save -> resume
        assert sid in sizes and sizes[sid] > 0
        for future in futures:  # everything admitted before save() landed in it
            assert future.done() and future.exception() is None
        assert store.read_checkpoint(f"session-{sid}") is not None

        # The runtime resumed: post-checkpoint work is still accepted.
        (rows, targets), = _stream(seed=10, count=1)
        runtime.append_rows(sid, rows, targets).result(timeout=30)
        assert runtime.query_solution(sid).result(timeout=30).x is not None
    finally:
        runtime.stop()
