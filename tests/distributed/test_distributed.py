"""Tests for the distributed block-row sketching layer (Section 7)."""

import numpy as np
import pytest

from repro.distributed.block_row import BlockRowMatrix
from repro.distributed.comm import CommCostModel, SimComm
from repro.distributed.cost_model import communication_table, sketch_communication_volume
from repro.distributed.dist_sketch import (
    distributed_block_srht,
    distributed_countsketch,
    distributed_gaussian_sketch,
    distributed_multisketch,
)
from repro.theory.distortion import measure_subspace_distortion


class TestCommCostModel:
    def test_single_process_is_free(self):
        m = CommCostModel()
        assert m.reduce_time(1e9, 1) == 0.0
        assert m.allreduce_time(1e9, 1) == 0.0
        assert m.broadcast_time(1e9, 1) == 0.0

    def test_reduce_time_grows_with_message_size(self):
        m = CommCostModel()
        assert m.reduce_time(1e9, 8) > m.reduce_time(1e6, 8)

    def test_tree_algorithm_more_expensive_for_large_messages(self):
        ring = CommCostModel(algorithm="ring")
        tree = CommCostModel(algorithm="tree")
        assert tree.reduce_time(1e9, 16) > ring.reduce_time(1e9, 16)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CommCostModel(bandwidth=0)
        with pytest.raises(ValueError):
            CommCostModel(algorithm="butterfly")


class TestSimComm:
    def test_reduce_sum(self):
        comm = SimComm(4)
        parts = [np.full(3, float(i)) for i in range(4)]
        total = comm.reduce_sum(parts)
        np.testing.assert_array_equal(total, np.full(3, 6.0))
        assert comm.total_time() > 0
        assert comm.total_bytes() == 24

    def test_allreduce_and_broadcast(self):
        comm = SimComm(4)
        total = comm.allreduce_sum([np.ones(2)] * 4)
        np.testing.assert_array_equal(total, 4 * np.ones(2))
        out = comm.broadcast(np.arange(3.0))
        np.testing.assert_array_equal(out, np.arange(3.0))
        assert set(comm.by_collective()) == {"allreduce", "broadcast"}

    def test_contribution_count_enforced(self):
        comm = SimComm(3)
        with pytest.raises(ValueError):
            comm.reduce_sum([np.ones(2)] * 2)

    def test_shape_mismatch_rejected(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.reduce_sum([np.ones(2), np.ones(3)])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimComm(0)


class TestBlockRowMatrix:
    def test_from_global_round_trip(self, rng):
        a = rng.standard_normal((100, 6))
        dist = BlockRowMatrix.from_global(a, 4)
        assert dist.n_blocks == 4
        assert dist.shape == (100, 6)
        np.testing.assert_array_equal(dist.gather(), a)

    def test_analytic_blocks(self):
        dist = BlockRowMatrix.analytic(1 << 20, 64, 8)
        assert dist.shape == (1 << 20, 64)
        assert not dist.is_numeric
        with pytest.raises(RuntimeError):
            dist.gather()

    def test_block_shapes_cover_all_rows(self, rng):
        dist = BlockRowMatrix.from_global(rng.standard_normal((103, 4)), 5)
        assert sum(dist.block_rows(r) for r in range(5)) == 103

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            BlockRowMatrix([])
        with pytest.raises(ValueError):
            BlockRowMatrix([rng.standard_normal((4, 3)), rng.standard_normal((4, 2))])
        with pytest.raises(ValueError):
            BlockRowMatrix([None], block_shapes=None)
        with pytest.raises(ValueError):
            BlockRowMatrix.from_global(rng.standard_normal((4, 2)), 10)


class TestDistributedSketches:
    D, N, P = 4096, 8, 4

    def _dist_matrix(self, rng):
        a = rng.standard_normal((self.D, self.N))
        return a, BlockRowMatrix.from_global(a, self.P)

    def test_distributed_gaussian_is_an_embedding(self, rng):
        a, dist = self._dist_matrix(rng)
        comm = SimComm(self.P)
        result = distributed_gaussian_sketch(dist, 8 * self.N, comm, seed=1)
        assert result.sketch.shape == (8 * self.N, self.N)

        class _Wrapper:
            def __init__(self, sketch):
                self.sketch = sketch

            def sketch_host(self, x):
                # re-run on the orthonormalised basis through the same machinery
                dist_x = BlockRowMatrix.from_global(np.asarray(x), TestDistributedSketches.P)
                return distributed_gaussian_sketch(dist_x, 8 * TestDistributedSketches.N, SimComm(TestDistributedSketches.P), seed=1).sketch

        eps = measure_subspace_distortion(_Wrapper(result.sketch), a)
        assert eps < 0.9

    def test_distributed_countsketch_matches_blockwise_reference(self, rng):
        a, dist = self._dist_matrix(rng)
        comm = SimComm(self.P)
        k = 4 * self.N * self.N
        result = distributed_countsketch(dist, k, comm, seed=2)
        assert result.sketch.shape == (k, self.N)
        # communication volume: one k x n partial per rank reduced once
        assert result.comm_bytes == pytest.approx(k * self.N * 8)
        assert len(result.per_rank_compute) == self.P

    def test_distributed_multisketch_message_matches_gaussian(self, rng):
        """Section 7: the multisketch reduces the same k2 x n message as the Gaussian."""
        a, dist = self._dist_matrix(rng)
        k1, k2 = 2 * self.N * self.N, 2 * self.N
        multi = distributed_multisketch(dist, k1, k2, SimComm(self.P), seed=3)
        gauss = distributed_gaussian_sketch(dist, k2, SimComm(self.P), seed=3)
        assert multi.comm_bytes == pytest.approx(gauss.comm_bytes)
        assert multi.sketch.shape == (k2, self.N)

    def test_distributed_block_srht(self, rng):
        a, dist = self._dist_matrix(rng)
        result = distributed_block_srht(dist, 2 * self.N, SimComm(self.P), seed=4)
        assert result.sketch.shape == (2 * self.N, self.N)
        assert np.all(np.isfinite(result.sketch))

    def test_block_srht_rejects_too_small_blocks(self, rng):
        dist = BlockRowMatrix.from_global(rng.standard_normal((64, 8)), 4)
        with pytest.raises(ValueError):
            distributed_block_srht(dist, 32, SimComm(4), seed=1)

    def test_communicator_size_must_match_blocks(self, rng):
        _, dist = self._dist_matrix(rng)
        with pytest.raises(ValueError):
            distributed_gaussian_sketch(dist, 16, SimComm(self.P + 1), seed=1)

    def test_analytic_mode_charges_costs_without_data(self):
        dist = BlockRowMatrix.analytic(1 << 18, 64, 4)
        comm = SimComm(4)
        result = distributed_countsketch(dist, 2 * 64 * 64, comm, seed=5)
        assert result.sketch is None
        assert result.max_rank_compute > 0
        assert result.total_seconds >= result.max_rank_compute


class TestCostModelTable:
    def test_countsketch_communicates_most(self):
        est = {m: sketch_communication_volume(m, 1 << 22, 128, 8) for m in
               ("gaussian", "countsketch", "multisketch", "block_srht")}
        assert est["countsketch"].message_bytes > est["block_srht"].message_bytes
        assert est["block_srht"].message_bytes > est["gaussian"].message_bytes
        assert est["multisketch"].message_bytes == est["gaussian"].message_bytes

    def test_multisketch_broadcast_accounted(self):
        est = sketch_communication_volume("multisketch", 1 << 22, 128, 8)
        assert est.broadcast_bytes > 0

    def test_table_covers_all_process_counts(self):
        rows = communication_table(1 << 20, 64, (2, 4, 8))
        assert len(rows) == 12

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sketch_communication_volume("gaussian", 0, 10, 2)
        with pytest.raises(ValueError):
            sketch_communication_volume("warp", 100, 10, 2)
