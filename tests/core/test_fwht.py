"""Tests for the Fast Walsh-Hadamard Transform implementations (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fwht import (
    fwht,
    fwht_global_passes,
    fwht_matrix,
    fwht_num_stages,
    fwht_radix4_inplace,
    hadamard_matrix,
    is_power_of_two,
    next_power_of_two,
)


class TestHelpers:
    @pytest.mark.parametrize("n,expected", [(1, True), (2, True), (3, False), (16, True), (0, False), (-4, False), (1024, True), (1023, False)])
    def test_is_power_of_two(self, n, expected):
        assert is_power_of_two(n) is expected

    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (1000, 1024), (1024, 1024)])
    def test_next_power_of_two(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_hadamard_matrix_orthogonality(self):
        h = hadamard_matrix(16)
        np.testing.assert_allclose(h @ h.T, 16 * np.eye(16))

    def test_hadamard_matrix_requires_power_of_two(self):
        with pytest.raises(ValueError):
            hadamard_matrix(12)


class TestVectorTransforms:
    @pytest.mark.parametrize("d", [1, 2, 4, 8, 16, 64, 256, 1024])
    def test_fwht_matches_explicit_hadamard(self, rng, d):
        x = rng.standard_normal(d)
        expected = hadamard_matrix(d) @ x
        np.testing.assert_allclose(fwht(x), expected, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("d", [4, 16, 64, 256, 1024])
    def test_radix4_matches_radix2(self, rng, d):
        x = rng.standard_normal(d)
        expected = fwht(x)
        np.testing.assert_allclose(fwht_radix4_inplace(x.copy()), expected, rtol=1e-10)

    @pytest.mark.parametrize("d", [2, 8, 32, 128, 512])
    def test_radix4_handles_odd_log2_lengths(self, rng, d):
        """Lengths that are powers of two but not powers of four need a radix-2 peel."""
        x = rng.standard_normal(d)
        np.testing.assert_allclose(fwht_radix4_inplace(x.copy()), fwht(x), rtol=1e-10)

    def test_non_power_of_two_rejected(self, rng):
        with pytest.raises(ValueError):
            fwht(rng.standard_normal(12))
        with pytest.raises(ValueError):
            fwht_radix4_inplace(rng.standard_normal(12))

    def test_involution_up_to_scaling(self, rng):
        """H (H x) = d x: the FWHT is its own inverse up to a factor of d."""
        x = rng.standard_normal(128)
        np.testing.assert_allclose(fwht(fwht(x)), 128 * x, rtol=1e-10)

    def test_parseval(self, rng):
        """||H x||^2 = d ||x||^2 (the transform preserves energy up to d)."""
        x = rng.standard_normal(256)
        assert np.linalg.norm(fwht(x)) ** 2 == pytest.approx(256 * np.linalg.norm(x) ** 2)


class TestMatrixTransform:
    def test_matrix_transform_matches_columnwise(self, rng):
        a = rng.standard_normal((64, 5))
        expected = np.column_stack([fwht(a[:, j]) for j in range(5)])
        np.testing.assert_allclose(fwht_matrix(a), expected, rtol=1e-10)

    def test_matrix_transform_accepts_vectors(self, rng):
        x = rng.standard_normal(32)
        np.testing.assert_allclose(fwht_matrix(x), fwht(x), rtol=1e-12)

    def test_matrix_transform_rejects_bad_row_count(self, rng):
        with pytest.raises(ValueError):
            fwht_matrix(rng.standard_normal((12, 3)))

    def test_linearity(self, rng):
        a = rng.standard_normal((64, 3))
        b = rng.standard_normal((64, 3))
        np.testing.assert_allclose(
            fwht_matrix(2.0 * a + b), 2.0 * fwht_matrix(a) + fwht_matrix(b), rtol=1e-10
        )


class TestStageCounting:
    @pytest.mark.parametrize("d,stages", [(4, 1), (16, 2), (64, 3), (256, 4), (2, 1), (8, 2)])
    def test_radix4_stage_count(self, d, stages):
        assert fwht_num_stages(d, radix=4) == stages

    def test_global_passes_decrease_with_shared_memory(self):
        d = 1 << 22
        small_smem = fwht_global_passes(d, shared_memory_elems=256)
        big_smem = fwht_global_passes(d, shared_memory_elems=6144)
        assert big_smem < small_smem

    def test_global_passes_at_least_one(self):
        assert fwht_global_passes(4, shared_memory_elems=1 << 20) == 1

    def test_global_passes_h100_shared_memory(self):
        """With 48 KB of shared memory (6144 doubles) a 2^22-point FWHT needs ~6 passes."""
        passes = fwht_global_passes(1 << 22, shared_memory_elems=6144, radix=4)
        assert 4 <= passes <= 8

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            fwht_num_stages(12)
        with pytest.raises(ValueError):
            fwht_global_passes(16, 0)


class TestFWHTProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        log2d=st.integers(min_value=0, max_value=9),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_energy_preservation_property(self, log2d, seed):
        d = 1 << log2d
        x = np.random.default_rng(seed).standard_normal(d)
        y = fwht(x)
        assert np.linalg.norm(y) ** 2 == pytest.approx(d * np.linalg.norm(x) ** 2, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        log2d=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_radix4_equals_radix2_property(self, log2d, seed):
        d = 1 << log2d
        x = np.random.default_rng(seed).standard_normal(d)
        np.testing.assert_allclose(fwht_radix4_inplace(x.copy()), fwht(x), rtol=1e-9, atol=1e-9)
