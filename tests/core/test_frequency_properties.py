"""Seeded property-based tests for the frequency-analytics error bounds.

Hypothesis drives the stream seeds (``derandomize=True`` like
``test_sketch_properties.py``, so the suite is deterministic run to run);
the exact ground truth comes from :class:`repro.workloads.streams.FrequencyStream`,
never from a second sketch.  Four contracts:

1. **Point-query bound**: ``|est - f_i| <= eps ||f||_2`` with
   ``eps = sqrt(3 / width)`` fails for at most a ``delta = exp(-depth / 6)``
   fraction of queried ids (the Chebyshev-per-row / Chernoff-median bound of
   :mod:`repro.theory.frequency`).
2. **Heavy-hitter eps-phi guarantee**: with ``width >= 12 / phi^2`` (i.e.
   ``eps <= phi / 2``), every true ``phi``-heavy item is reported and no
   reported item is lighter than ``(phi - eps) ||f||_2``.
3. **Hierarchical range queries** agree with brute-force truth within the
   canonical cover's accumulated per-node error.
4. **Merge and restore transparency**: the identities are *bitwise* --
   a merged pair of half-stream sketches equals the single-pass sketch, and
   a ``state_dict``/``load_state`` round trip changes no answer -- so every
   bound above holds verbatim for merged and restored sketches.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequency import FrequencySketch, HierarchicalFrequencySketch
from repro.theory.frequency import (
    point_query_epsilon,
    point_query_failure,
    range_query_nodes,
    width_for_epsilon,
)
from repro.workloads.streams import zipf_stream

SEEDS = st.integers(min_value=0, max_value=10_000)

DOMAIN = 1 << 14


def _feed(sketch, stream) -> None:
    for batch in stream:
        sketch.update(batch.ids, batch.weights)


# ---------------------------------------------------------------------------
# 1. point estimates respect eps * ||f||_2 at the configured failure rate
# ---------------------------------------------------------------------------
@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_point_estimates_respect_epsilon_bound(seed):
    width, depth = 256, 7
    eps = point_query_epsilon(width)       # sqrt(3/256) ~ 0.108
    delta = point_query_failure(depth)     # exp(-7/6) ~ 0.31
    stream = zipf_stream(DOMAIN, total_items=20_000, alpha=1.2, seed=seed)
    sketch = FrequencySketch(DOMAIN, width, depth, seed=seed + 1)
    _feed(sketch, stream)

    counts = stream.true_counts()
    l2 = stream.true_l2()
    # Query every id that occurred plus an equal number of absent ids
    # (true frequency 0): the bound covers both.
    present = np.fromiter(counts.keys(), dtype=np.int64)
    rng = np.random.default_rng(seed)
    absent = rng.integers(0, DOMAIN, size=present.size)
    absent = absent[np.fromiter((int(i) not in counts for i in absent), dtype=bool)]
    ids = np.concatenate([present, absent])
    truth = np.array([counts.get(int(i), 0.0) for i in ids])

    est = sketch.point_query(ids)
    failures = np.abs(est - truth) > eps * l2
    assert failures.mean() <= delta, (
        f"{failures.sum()}/{ids.size} point queries broke the eps*l2 bound "
        f"(allowed fraction {delta:.3f})"
    )


# ---------------------------------------------------------------------------
# 2. heavy-hitter recovery achieves the eps-phi guarantee on Zipfian streams
# ---------------------------------------------------------------------------
@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_heavy_hitters_eps_phi_guarantee(seed):
    phi = 0.1
    width = width_for_epsilon(phi / 2.0)   # 12 / phi^2 = 1200
    eps = point_query_epsilon(width)
    stream = zipf_stream(DOMAIN, total_items=20_000, alpha=1.3, seed=seed)
    sketch = FrequencySketch(DOMAIN, width, depth=9, seed=seed + 1)
    _feed(sketch, stream)

    l2 = stream.true_l2()
    true_heavy = {i for i, _ in stream.heavy_hitters(phi)}
    reported = dict(sketch.heavy_hitters(phi))

    # Completeness: every true phi-heavy item is recovered (est >= phi*l2_est
    # holds because |est - f| <= eps*l2 and f >= phi*l2 with eps <= phi/2).
    missed = true_heavy - set(reported)
    assert not missed, f"true heavy hitters missed: {sorted(missed)}"
    # Soundness: nothing lighter than (phi - eps) * ||f||_2 is reported.
    counts = stream.true_counts()
    floor = (phi - eps) * l2
    too_light = {
        i for i in reported if counts.get(int(i), 0.0) < floor * (1.0 - 1e-12)
    }
    assert not too_light, f"reported items below (phi-eps)*l2: {sorted(too_light)}"


# ---------------------------------------------------------------------------
# 3. hierarchical range queries vs. brute force on small universes
# ---------------------------------------------------------------------------
@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=SEEDS, lo_frac=st.floats(0.0, 0.8), span_frac=st.floats(0.05, 0.5))
def test_hierarchical_range_matches_brute_force(seed, lo_frac, span_frac):
    domain, branch = 4096, 4
    width, depth = 2048, 9
    eps = point_query_epsilon(width)
    stream = zipf_stream(domain, total_items=8_000, alpha=1.3, seed=seed)
    sketch = HierarchicalFrequencySketch(
        domain, width, depth, branch=branch, seed=seed + 1
    )
    _feed(sketch, stream)

    lo = int(lo_frac * domain)
    hi = min(domain, lo + max(1, int(span_frac * domain)))
    truth = stream.range_weight(lo, hi)
    est = sketch.range_query(lo, hi)

    # Each node of the canonical cover errs by at most eps * ||f_level||_2
    # (w.h.p.); every level's norm is bounded by the total stream weight
    # ||f||_1, so the cover's accumulated error is bounded by
    # nodes * eps * ||f||_1.
    nodes = range_query_nodes(domain, branch)
    total_weight = float(stream.total_items)
    assert abs(est - truth) <= nodes * eps * total_weight, (
        f"range [{lo}, {hi}): estimate {est} vs truth {truth} "
        f"(allowed {nodes * eps * total_weight:.1f})"
    )


# ---------------------------------------------------------------------------
# 4. merge and restore are bitwise-transparent, so the bounds transfer
# ---------------------------------------------------------------------------
@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_merged_sketch_is_bitwise_single_pass(seed):
    width, depth = 512, 5
    stream = zipf_stream(DOMAIN, total_items=10_000, alpha=1.2, seed=seed)
    whole = FrequencySketch(DOMAIN, width, depth, seed=seed + 1)
    left = FrequencySketch(DOMAIN, width, depth, seed=seed + 1)
    right = FrequencySketch(DOMAIN, width, depth, seed=seed + 1)
    batches = list(stream)
    half = len(batches) // 2
    for b in batches:
        whole.update(b.ids, b.weights)
    for b in batches[:half]:
        left.update(b.ids, b.weights)
    for b in batches[half:]:
        right.update(b.ids, b.weights)
    left.merge_from(right)
    np.testing.assert_array_equal(left.table(), whole.table())
    assert left.items_seen == whole.items_seen
    # Identical tables => identical answers; spot-check the query surface.
    ids = stream.all_ids()[:64]
    np.testing.assert_array_equal(left.point_query(ids), whole.point_query(ids))
    assert left.l2_estimate() == whole.l2_estimate()
    assert left.heavy_hitters(0.1) == whole.heavy_hitters(0.1)


@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_restored_sketch_answers_bitwise_identically(seed):
    width, depth = 512, 5
    stream = zipf_stream(DOMAIN, total_items=10_000, alpha=1.2, seed=seed)
    original = FrequencySketch(DOMAIN, width, depth, seed=seed + 1)
    _feed(original, stream)
    clone = FrequencySketch(DOMAIN, width, depth, seed=seed + 1)
    clone.load_state(original.state_dict())
    ids = stream.all_ids()[:64]
    np.testing.assert_array_equal(clone.point_query(ids), original.point_query(ids))
    assert clone.l2_estimate() == original.l2_estimate()
    assert clone.heavy_hitters(0.1) == original.heavy_hitters(0.1)


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_hierarchical_restore_round_trip(seed):
    domain, branch = 4096, 4
    stream = zipf_stream(domain, total_items=6_000, alpha=1.3, seed=seed)
    original = HierarchicalFrequencySketch(
        domain, 1024, 5, branch=branch, seed=seed + 1
    )
    _feed(original, stream)
    clone = HierarchicalFrequencySketch(
        domain, 1024, 5, branch=branch, seed=seed + 1
    )
    clone.load_state(original.state_dict())
    assert clone.range_query(7, 1023) == original.range_query(7, 1023)
    assert clone.top_k(10, 0.1) == original.top_k(10, 0.1)
    assert clone.l2_estimate() == original.l2_estimate()


def test_mismatched_merge_is_refused():
    a = FrequencySketch(DOMAIN, 256, 5, seed=1)
    b = FrequencySketch(DOMAIN, 256, 5, seed=2)     # different hash seed
    c = FrequencySketch(DOMAIN, 128, 5, seed=1)     # different width
    with pytest.raises(ValueError):
        a.merge_from(b)
    with pytest.raises(ValueError):
        a.merge_from(c)
