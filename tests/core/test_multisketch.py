"""Tests for multisketch composition and the Count-Gauss factory."""

import numpy as np
import pytest

from repro.core.countsketch import CountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import MultiSketch, count_gauss
from repro.gpu.executor import GPUExecutor


D, N = 4096, 8


class TestComposition:
    def test_two_stage_matches_explicit_product(self, executor, rng):
        a = rng.standard_normal((D, N))
        count = CountSketch(D, 2 * N * N, executor=executor, seed=1)
        gauss = GaussianSketch(2 * N * N, 2 * N, executor=executor, seed=2)
        multi = MultiSketch([count, gauss])
        y = multi.sketch_host(a)
        expected = gauss.explicit_matrix() @ (count.explicit_matrix() @ a)
        np.testing.assert_allclose(y, expected, rtol=1e-10)

    def test_explicit_matrix_of_composition(self, executor):
        count = CountSketch(D, 64, executor=executor, seed=1)
        gauss = GaussianSketch(64, 16, executor=executor, seed=2)
        multi = MultiSketch([count, gauss])
        np.testing.assert_allclose(
            multi.explicit_matrix(),
            gauss.explicit_matrix() @ count.explicit_matrix(),
            rtol=1e-10,
        )

    def test_vector_path(self, executor, rng):
        b = rng.standard_normal(D)
        multi = count_gauss(D, N, executor=executor, seed=3)
        np.testing.assert_allclose(
            multi.sketch_host(b), multi.explicit_matrix() @ b, rtol=1e-10
        )

    def test_dimension_chaining_validated(self, executor):
        count = CountSketch(D, 64, executor=executor, seed=1)
        gauss = GaussianSketch(128, 16, executor=executor, seed=2)  # mismatched input dim
        with pytest.raises(ValueError):
            MultiSketch([count, gauss])

    def test_single_stage_rejected(self, executor):
        count = CountSketch(D, 64, executor=executor, seed=1)
        with pytest.raises(ValueError):
            MultiSketch([count])

    def test_stages_must_share_executor(self, executor):
        other = GPUExecutor(numeric=True, seed=0, track_memory=False)
        count = CountSketch(D, 64, executor=executor, seed=1)
        gauss = GaussianSketch(64, 16, executor=other, seed=2)
        with pytest.raises(ValueError):
            MultiSketch([count, gauss])

    def test_three_stage_composition(self, executor, rng):
        a = rng.standard_normal((D, 4))
        s1 = CountSketch(D, 512, executor=executor, seed=1)
        s2 = CountSketch(512, 64, executor=executor, seed=2)
        s3 = GaussianSketch(64, 8, executor=executor, seed=3)
        multi = MultiSketch([s1, s2, s3])
        expected = (
            s3.explicit_matrix() @ s2.explicit_matrix() @ s1.explicit_matrix() @ a
        )
        np.testing.assert_allclose(multi.sketch_host(a), expected, rtol=1e-10)


class TestCountGaussFactory:
    def test_default_dimensions_follow_paper(self, executor):
        multi = count_gauss(1 << 16, 64, executor=executor, seed=1)
        assert multi.stages[0].k == 2 * 64 * 64  # k1 = 2 n^2
        assert multi.k == 2 * 64  # k2 = 2 n

    def test_k1_clipped_to_d(self, executor):
        multi = count_gauss(1000, 64, executor=executor, seed=1)  # 2n^2 = 8192 > d
        assert multi.stages[0].k == 1000

    def test_k2_cannot_exceed_k1(self, executor):
        with pytest.raises(ValueError):
            count_gauss(D, N, k1=8, k2=16, executor=executor)

    def test_spmm_variant_selectable(self, executor):
        multi = count_gauss(D, N, countsketch_variant="spmm", executor=executor, seed=1)
        assert multi.stages[0].variant == "spmm"

    def test_norm_preserved_in_expectation(self, executor, rng):
        x = rng.standard_normal(D)
        norms = [
            np.linalg.norm(count_gauss(D, 16, executor=executor, seed=s).sketch_host(x)) ** 2
            for s in range(25)
        ]
        assert np.mean(norms) == pytest.approx(np.linalg.norm(x) ** 2, rel=0.2)


class TestTransposeTrick:
    def test_trick_and_no_trick_produce_identical_results(self, executor, rng):
        a = rng.standard_normal((D, N))
        y1 = count_gauss(D, N, executor=executor, seed=5, transpose_trick=True).sketch_host(a)
        y2 = count_gauss(D, N, executor=executor, seed=5, transpose_trick=False).sketch_host(a)
        np.testing.assert_allclose(y1, y2, rtol=1e-10)

    def test_trick_is_faster_at_paper_scale(self):
        """Section 6.1: transposing only the small k2 x n result saves time."""
        d, n = 1 << 22, 128
        ex1 = GPUExecutor(numeric=False, track_memory=False)
        a1 = ex1.empty((d, n))
        count_gauss(d, n, executor=ex1, seed=1, transpose_trick=True).apply(a1)
        with_trick = ex1.elapsed

        ex2 = GPUExecutor(numeric=False, track_memory=False)
        a2 = ex2.empty((d, n))
        count_gauss(d, n, executor=ex2, seed=1, transpose_trick=False).apply(a2)
        without_trick = ex2.elapsed
        assert with_trick < without_trick

    def test_multisketch_adds_little_overhead_over_countsketch(self):
        """Figure 2: 'the multisketch technique adds minimal overhead to the CountSketch'."""
        d, n = 1 << 22, 128
        ex1 = GPUExecutor(numeric=False, track_memory=False)
        CountSketch(d, 2 * n * n, executor=ex1, seed=1).apply(ex1.empty((d, n)))
        count_only = ex1.elapsed

        ex2 = GPUExecutor(numeric=False, track_memory=False)
        count_gauss(d, n, executor=ex2, seed=1).apply(ex2.empty((d, n)))
        multi = ex2.elapsed
        assert multi < 1.6 * count_only
