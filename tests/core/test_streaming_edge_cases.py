"""Edge cases of the hash-based StreamingCountSketch.

These pin down the contract the streaming example
(``examples/streaming_frequent_directions.py``) relies on: batches may be
ragged or even empty, and two sketches built from the same seed derive the
*same* hashed row map and signs, so separately sketched features and targets
stay aligned row for row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.countsketch import StreamingCountSketch

D, N, K = 1024, 8, 128


def _stream(sketch: StreamingCountSketch, a: np.ndarray, batch: int) -> np.ndarray:
    sketch.begin(a.shape[1])
    for start in range(0, a.shape[0], batch):
        idx = np.arange(start, min(start + batch, a.shape[0]))
        sketch.update(idx, a[idx])
    return sketch.result().to_host()


class TestStreamingBatching:
    def test_empty_batch_is_a_no_op(self, executor, rng):
        a = rng.standard_normal((D, N))
        sketch = StreamingCountSketch(D, K, executor=executor, seed=5)
        sketch.begin(N)
        sketch.update(np.arange(D), a)
        before = sketch._accumulator.to_host()
        sketch.update(np.array([], dtype=np.int64), np.zeros((0, N)))
        after = sketch.result().to_host()
        np.testing.assert_array_equal(before, after)

    def test_stream_of_only_empty_batches_gives_zero_sketch(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=5)
        sketch.begin(N)
        for _ in range(3):
            sketch.update(np.array([], dtype=np.int64), np.zeros((0, N)))
        out = sketch.result().to_host()
        assert out.shape == (K, N)
        np.testing.assert_array_equal(out, np.zeros((K, N)))

    def test_final_ragged_batch_matches_one_shot_apply(self, executor, rng):
        a = rng.standard_normal((D, N))
        # 1024 rows in batches of 100 -> final batch has only 24 rows.
        streamed = _stream(StreamingCountSketch(D, K, executor=executor, seed=9), a, batch=100)
        one_shot = StreamingCountSketch(D, K, executor=executor, seed=9).sketch_host(a)
        np.testing.assert_allclose(streamed, one_shot, rtol=0, atol=1e-12)

    def test_batch_size_does_not_change_the_sketch(self, executor, rng):
        a = rng.standard_normal((D, N))
        per_row = _stream(StreamingCountSketch(D, K, executor=executor, seed=3), a, batch=1)
        big = _stream(StreamingCountSketch(D, K, executor=executor, seed=3), a, batch=D)
        np.testing.assert_allclose(per_row, big, rtol=0, atol=1e-12)


class TestSeedAlignment:
    """Two same-seed sketches must map row i identically (the example's invariant)."""

    def test_same_seed_same_row_map_and_signs(self, executor):
        s1 = StreamingCountSketch(D, K, executor=executor, seed=42)
        s2 = StreamingCountSketch(D, K, executor=executor, seed=42)
        idx = np.arange(D)
        rows1, signs1 = s1.row_map_and_signs(idx)
        rows2, signs2 = s2.row_map_and_signs(idx)
        np.testing.assert_array_equal(rows1, rows2)
        np.testing.assert_array_equal(signs1, signs2)

    def test_separately_sketched_features_and_targets_stay_aligned(self, executor, rng):
        a = rng.standard_normal((D, N))
        x_true = rng.standard_normal(N)
        b = a @ x_true
        feat = StreamingCountSketch(D, K, executor=executor, seed=42)
        targ = StreamingCountSketch(D, K, executor=executor, seed=42)
        sa = _stream(feat, a, batch=200)
        sb = _stream(targ, b.reshape(-1, 1), batch=200)[:, 0]
        # Row alignment means S(A x) == (S A) x exactly: the exact solution
        # of the sketched system is the exact solution of the original one.
        np.testing.assert_allclose(sa @ x_true, sb, rtol=1e-10, atol=1e-10)

    def test_different_seeds_are_not_aligned(self, executor):
        s1 = StreamingCountSketch(D, K, executor=executor, seed=1)
        s2 = StreamingCountSketch(D, K, executor=executor, seed=2)
        rows1, _ = s1.row_map_and_signs(np.arange(D))
        rows2, _ = s2.row_map_and_signs(np.arange(D))
        assert not np.array_equal(rows1, rows2)


class TestStreamingErrors:
    def test_update_before_begin_raises(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=0)
        with pytest.raises(RuntimeError):
            sketch.update(np.arange(4), np.zeros((4, N)))

    def test_out_of_range_indices_raise(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=0)
        sketch.begin(N)
        with pytest.raises(ValueError):
            sketch.update(np.array([D]), np.zeros((1, N)))
        with pytest.raises(ValueError):
            sketch.update(np.array([-1]), np.zeros((1, N)))

    def test_result_closes_the_pass(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=0)
        sketch.begin(N)
        sketch.result()
        with pytest.raises(RuntimeError):
            sketch.result()
