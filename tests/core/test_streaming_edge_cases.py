"""Edge cases of the hash-based StreamingCountSketch.

These pin down the contract the streaming example
(``examples/streaming_frequent_directions.py``) relies on: batches may be
ragged or even empty, and two sketches built from the same seed derive the
*same* hashed row map and signs, so separately sketched features and targets
stay aligned row for row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.countsketch import StreamingCountSketch

D, N, K = 1024, 8, 128


def _stream(sketch: StreamingCountSketch, a: np.ndarray, batch: int) -> np.ndarray:
    sketch.begin(a.shape[1])
    for start in range(0, a.shape[0], batch):
        idx = np.arange(start, min(start + batch, a.shape[0]))
        sketch.update(idx, a[idx])
    return sketch.result().to_host()


class TestStreamingBatching:
    def test_empty_batch_is_a_no_op(self, executor, rng):
        a = rng.standard_normal((D, N))
        sketch = StreamingCountSketch(D, K, executor=executor, seed=5)
        sketch.begin(N)
        sketch.update(np.arange(D), a)
        before = sketch._accumulator.to_host()
        sketch.update(np.array([], dtype=np.int64), np.zeros((0, N)))
        after = sketch.result().to_host()
        np.testing.assert_array_equal(before, after)

    def test_stream_of_only_empty_batches_gives_zero_sketch(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=5)
        sketch.begin(N)
        for _ in range(3):
            sketch.update(np.array([], dtype=np.int64), np.zeros((0, N)))
        out = sketch.result().to_host()
        assert out.shape == (K, N)
        np.testing.assert_array_equal(out, np.zeros((K, N)))

    def test_final_ragged_batch_matches_one_shot_apply(self, executor, rng):
        a = rng.standard_normal((D, N))
        # 1024 rows in batches of 100 -> final batch has only 24 rows.
        streamed = _stream(StreamingCountSketch(D, K, executor=executor, seed=9), a, batch=100)
        one_shot = StreamingCountSketch(D, K, executor=executor, seed=9).sketch_host(a)
        np.testing.assert_allclose(streamed, one_shot, rtol=0, atol=1e-12)

    def test_batch_size_does_not_change_the_sketch(self, executor, rng):
        a = rng.standard_normal((D, N))
        per_row = _stream(StreamingCountSketch(D, K, executor=executor, seed=3), a, batch=1)
        big = _stream(StreamingCountSketch(D, K, executor=executor, seed=3), a, batch=D)
        np.testing.assert_allclose(per_row, big, rtol=0, atol=1e-12)


class TestSeedAlignment:
    """Two same-seed sketches must map row i identically (the example's invariant)."""

    def test_same_seed_same_row_map_and_signs(self, executor):
        s1 = StreamingCountSketch(D, K, executor=executor, seed=42)
        s2 = StreamingCountSketch(D, K, executor=executor, seed=42)
        idx = np.arange(D)
        rows1, signs1 = s1.row_map_and_signs(idx)
        rows2, signs2 = s2.row_map_and_signs(idx)
        np.testing.assert_array_equal(rows1, rows2)
        np.testing.assert_array_equal(signs1, signs2)

    def test_separately_sketched_features_and_targets_stay_aligned(self, executor, rng):
        a = rng.standard_normal((D, N))
        x_true = rng.standard_normal(N)
        b = a @ x_true
        feat = StreamingCountSketch(D, K, executor=executor, seed=42)
        targ = StreamingCountSketch(D, K, executor=executor, seed=42)
        sa = _stream(feat, a, batch=200)
        sb = _stream(targ, b.reshape(-1, 1), batch=200)[:, 0]
        # Row alignment means S(A x) == (S A) x exactly: the exact solution
        # of the sketched system is the exact solution of the original one.
        np.testing.assert_allclose(sa @ x_true, sb, rtol=1e-10, atol=1e-10)

    def test_different_seeds_are_not_aligned(self, executor):
        s1 = StreamingCountSketch(D, K, executor=executor, seed=1)
        s2 = StreamingCountSketch(D, K, executor=executor, seed=2)
        rows1, _ = s1.row_map_and_signs(np.arange(D))
        rows2, _ = s2.row_map_and_signs(np.arange(D))
        assert not np.array_equal(rows1, rows2)


class TestUpdateHotPath:
    """Regressions for the update() fast path: empty and tiny batches."""

    def test_empty_batch_charges_no_kernel(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=5)
        sketch.begin(N)
        mark = executor.mark()
        sketch.update(np.array([], dtype=np.int64), np.zeros((0, N)))
        assert executor.elapsed_since(mark) == 0.0
        assert sketch.rows_seen == 0

    def test_empty_list_batch_is_accepted(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=5)
        sketch.begin(N)
        sketch.update([], None)
        assert sketch.rows_seen == 0

    def test_single_row_batch_matches_one_shot(self, executor, rng):
        a = rng.standard_normal((D, N))
        per_row = _stream(StreamingCountSketch(D, K, executor=executor, seed=11), a, batch=1)
        one_shot = StreamingCountSketch(D, K, executor=executor, seed=11).sketch_host(a)
        np.testing.assert_allclose(per_row, one_shot, rtol=0, atol=1e-12)

    def test_generic_iterables_convert_without_list_round_trip(self, executor, rng):
        """range / list / generator index batches all hit the array path."""
        a = rng.standard_normal((8, N))
        sketches = []
        for indices in (np.arange(8), range(8), list(range(8)), (i for i in range(8))):
            sketch = StreamingCountSketch(D, K, executor=executor, seed=13)
            sketch.begin(N)
            sketch.update(indices, a)
            sketches.append(sketch.result().to_host())
        for out in sketches[1:]:
            np.testing.assert_array_equal(sketches[0], out)


class TestMergeAndScaleHooks:
    """The streaming engine's window algebra: linearity made explicit."""

    def test_merged_disjoint_passes_equal_one_shot(self, executor, rng):
        a = rng.standard_normal((D, N))
        lo = StreamingCountSketch(D, K, executor=executor, seed=21)
        hi = StreamingCountSketch(D, K, executor=executor, seed=21)
        lo.begin(N)
        hi.begin(N)
        lo.update(np.arange(0, D // 2), a[: D // 2])
        hi.update(np.arange(D // 2, D), a[D // 2 :])
        lo.merge_from(hi)
        assert lo.rows_seen == D
        merged = lo.result().to_host()
        one_shot = StreamingCountSketch(D, K, executor=executor, seed=21).sketch_host(a)
        np.testing.assert_allclose(merged, one_shot, rtol=0, atol=1e-12)

    def test_merge_charges_simulated_time(self, executor):
        s1 = StreamingCountSketch(D, K, executor=executor, seed=1)
        s2 = StreamingCountSketch(D, K, executor=executor, seed=1)
        s1.begin(N)
        s2.begin(N)
        mark = executor.mark()
        s1.merge_from(s2)
        assert executor.elapsed_since(mark) > 0.0

    def test_merge_rejects_mismatched_state(self, executor):
        s1 = StreamingCountSketch(D, K, executor=executor, seed=1)
        s2 = StreamingCountSketch(D, K, executor=executor, seed=2)
        s1.begin(N)
        s2.begin(N)
        with pytest.raises(ValueError, match="identical hashed state"):
            s1.merge_from(s2)
        s3 = StreamingCountSketch(D, K, executor=executor, seed=1)
        s3.begin(N + 1)
        with pytest.raises(ValueError, match="column counts"):
            s1.merge_from(s3)
        closed = StreamingCountSketch(D, K, executor=executor, seed=1)
        with pytest.raises(RuntimeError):
            s1.merge_from(closed)

    def test_merge_rejects_mixed_numeric_and_analytic_passes(self, executor, analytic_executor):
        numeric = StreamingCountSketch(D, K, executor=executor, seed=1)
        analytic = StreamingCountSketch(D, K, executor=analytic_executor, seed=1)
        numeric.begin(N)
        analytic.begin(N)
        analytic.update(np.arange(8), None)
        with pytest.raises(ValueError, match="numeric and analytic"):
            numeric.merge_from(analytic)
        assert numeric.rows_seen == 0  # nothing was corrupted

    def test_scale_is_scalar_linearity(self, executor, rng):
        a = rng.standard_normal((256, N))
        sketch = StreamingCountSketch(D, K, executor=executor, seed=3)
        sketch.begin(N)
        sketch.update(np.arange(256), a)
        before = sketch.snapshot()
        sketch.scale(0.25)
        np.testing.assert_allclose(sketch.snapshot(), 0.25 * before, rtol=0, atol=1e-14)

    def test_snapshot_leaves_the_pass_open(self, executor, rng):
        a = rng.standard_normal((64, N))
        sketch = StreamingCountSketch(D, K, executor=executor, seed=3)
        sketch.begin(N)
        sketch.update(np.arange(32), a[:32])
        first = sketch.snapshot()
        sketch.update(np.arange(32, 64), a[32:])
        assert sketch.rows_seen == 64
        assert not np.array_equal(first, sketch.snapshot())


class TestStreamingErrors:
    def test_update_before_begin_raises(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=0)
        with pytest.raises(RuntimeError):
            sketch.update(np.arange(4), np.zeros((4, N)))

    def test_out_of_range_indices_raise(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=0)
        sketch.begin(N)
        with pytest.raises(ValueError):
            sketch.update(np.array([D]), np.zeros((1, N)))
        with pytest.raises(ValueError):
            sketch.update(np.array([-1]), np.zeros((1, N)))

    def test_result_closes_the_pass(self, executor):
        sketch = StreamingCountSketch(D, K, executor=executor, seed=0)
        sketch.begin(N)
        sketch.result()
        with pytest.raises(RuntimeError):
            sketch.result()


class TestDensificationGuard:
    """Address-space sketches must refuse whole-domain materialisation.

    Window sketches are built with ``STREAM_CAPACITY = 2^48`` input rows;
    any code path that enumerates ``np.arange(d)`` on one of them would
    attempt a petabyte-scale allocation.  The guard converts that into a
    typed :class:`SketchMaterializationError` while leaving the streaming
    contract -- explicit-index updates -- fully functional.
    """

    HUGE = 1 << 48  # STREAM_CAPACITY: the serving windows' address space

    def test_whole_domain_operations_raise_typed_error(self, executor):
        from repro.core.countsketch import SketchMaterializationError

        sketch = StreamingCountSketch(self.HUGE, K, executor=executor, seed=0)
        with pytest.raises(SketchMaterializationError):
            sketch.explicit_matrix()
        # apply()/apply_vector() need a d-row input, which is impossible to
        # construct at 2^48 rows: the shape check fires first.  The
        # materialisation guard inside them is the backstop for a
        # hypothetical full-size device array.
        with pytest.raises(ValueError):
            sketch.apply(np.zeros((4, N)))
        with pytest.raises(ValueError):
            sketch.apply_vector(np.zeros(4))

    def test_explicit_index_streaming_still_works(self, executor, rng):
        sketch = StreamingCountSketch(self.HUGE, K, executor=executor, seed=0)
        sketch.begin(N)
        idx = np.array([0, 1, (1 << 47) + 3, self.HUGE - 1], dtype=np.int64)
        rows = rng.standard_normal((idx.size, N))
        sketch.update(idx, rows)
        assert sketch.rows_seen == idx.size
        out = sketch.result().to_host()
        assert out.shape == (K, N)
        assert np.linalg.norm(out) > 0.0

    def test_enumerable_domains_are_unaffected(self, executor, rng):
        from repro.core.countsketch import DENSIFY_LIMIT

        assert D <= DENSIFY_LIMIT
        sketch = StreamingCountSketch(D, K, executor=executor, seed=0)
        assert sketch.explicit_matrix().shape == (K, D)
