"""Tests for the SketchOperator interface plus property-based embedding tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import SketchOperator, default_embedding_dim
from repro.core.countsketch import CountSketch, StreamingCountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.theory.distortion import measure_subspace_distortion, singular_value_distortion


class TestDefaultEmbeddingDim:
    def test_paper_choices(self):
        assert default_embedding_dim("gaussian", 128) == 256
        assert default_embedding_dim("srht", 128) == 256
        assert default_embedding_dim("countsketch", 128) == 2 * 128 * 128
        assert default_embedding_dim("multisketch", 128) == 256

    def test_custom_oversampling(self):
        assert default_embedding_dim("gaussian", 100, oversampling=4.0) == 400

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            default_embedding_dim("fourier", 10)


class TestInterfaceContracts:
    def test_invalid_dimensions(self, executor):
        with pytest.raises(ValueError):
            GaussianSketch(0, 1, executor=executor)
        with pytest.raises(ValueError):
            GaussianSketch(-5, 2, executor=executor)
        with pytest.raises(ValueError):
            GaussianSketch(10, 20, executor=executor)  # k > d

    def test_shape_and_metadata(self, executor):
        g = GaussianSketch(100, 10, executor=executor, seed=5)
        assert g.shape == (10, 100)
        assert g.d == 100 and g.k == 10
        assert g.seed == 5
        assert not g.is_generated
        g.generate()
        assert g.is_generated

    def test_default_executor_created_when_omitted(self):
        cs = CountSketch(64, 8, seed=1)
        assert cs.executor is not None
        assert cs.executor.numeric
        y = cs.sketch_host(np.eye(64))
        assert y.shape == (8, 64)

    def test_cannot_instantiate_abstract_base(self):
        with pytest.raises(TypeError):
            SketchOperator(10, 5)  # type: ignore[abstract]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda ex: CountSketch(512, 64, executor=ex, seed=3),
            lambda ex: StreamingCountSketch(512, 64, executor=ex, seed=3),
            lambda ex: GaussianSketch(512, 32, executor=ex, seed=3),
            lambda ex: SRHT(512, 32, executor=ex, seed=3),
            lambda ex: count_gauss(512, 4, executor=ex, seed=3),
        ],
    )
    def test_all_operators_share_the_interface(self, executor, rng, factory):
        sketch = factory(executor)
        a = rng.standard_normal((512, 4))
        b = rng.standard_normal(512)
        y = sketch.sketch_host(a)
        z = sketch.sketch_host(b)
        assert y.shape == (sketch.k, 4)
        assert z.shape == (sketch.k,)
        assert np.all(np.isfinite(y)) and np.all(np.isfinite(z))


class TestSubspaceEmbeddingProperties:
    """Property-based checks of Definition 1.1 on random subspaces."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_gaussian_sketch_is_a_subspace_embedding(self, seed):
        d, n, k = 1024, 4, 256
        basis = np.random.default_rng(seed).standard_normal((d, n))
        sketch = GaussianSketch(d, k, seed=seed)
        eps = measure_subspace_distortion(sketch, basis)
        assert eps < 0.75  # k = 64 n gives a comfortable distortion margin

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_countsketch_is_a_subspace_embedding(self, seed):
        d, n = 2048, 4
        k = 16 * n * n  # comfortably above the O(n^2) requirement
        basis = np.random.default_rng(seed).standard_normal((d, n))
        sketch = CountSketch(d, k, seed=seed)
        eps = measure_subspace_distortion(sketch, basis)
        assert eps < 0.8

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_multisketch_is_a_subspace_embedding(self, seed):
        d, n = 2048, 4
        basis = np.random.default_rng(seed).standard_normal((d, n))
        sketch = count_gauss(d, n, k1=32 * n * n, k2=64 * n, seed=seed)
        eps = measure_subspace_distortion(sketch, basis)
        assert eps < 0.9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_singular_values_of_sketched_orthobasis_near_one(self, seed):
        d, n, k = 1024, 4, 256
        basis = np.random.default_rng(seed).standard_normal((d, n))
        sketch = GaussianSketch(d, k, seed=seed)
        smin, smax = singular_value_distortion(sketch, basis)
        assert 0.5 < smin <= smax < 1.6

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=6),
    )
    def test_sketch_output_shapes_property(self, seed, n):
        d = 512
        a = np.random.default_rng(seed).standard_normal((d, n))
        for sketch in (
            CountSketch(d, 128, seed=seed),
            GaussianSketch(d, 64, seed=seed),
            SRHT(d, 64, seed=seed),
        ):
            y = sketch.sketch_host(a)
            assert y.shape == (sketch.k, n)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_countsketch_preserves_column_sums_up_to_sign_structure(self, seed):
        """Each column of A contributes exactly once (with +-1) to the sketch."""
        d, n, k = 512, 3, 64
        a = np.random.default_rng(seed).standard_normal((d, n))
        cs = CountSketch(d, k, seed=seed)
        y = cs.sketch_host(a)
        signs = np.where(cs.signs, 1.0, -1.0)
        np.testing.assert_allclose(y.sum(axis=0), (signs[:, None] * a).sum(axis=0), rtol=1e-9)
