"""Seeded property-based tests for every sketch operator.

Three contracts, each checked over hypothesis-driven seed ranges (with
``derandomize=True``, so the suite is deterministic run to run):

1. **Embedding quality**: each family's realised subspace distortion on a
   random ``n``-dimensional subspace stays inside the bound its embedding
   dimension is chosen for (Definition 1.1 / Section 6.2 of the paper).
2. **Streaming algebra**: :class:`~repro.core.countsketch.StreamingCountSketch`
   is a *linear* summary -- ``merge_from`` of disjoint passes equals one
   pass over the union, ``scale`` commutes with accumulation, ``snapshot``
   is a non-destructive read.  These identities are what the sliding /
   decayed streaming windows rely on.
3. **Cache-key identity**: ``cache_key()`` is a pure function of the
   constructor configuration -- equal keys mean bit-identical sketches
   (the serving cache's contract), distinct configurations never alias.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.countsketch import CountSketch, StreamingCountSketch
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.theory.distortion import measure_subspace_distortion

#: One builder per family at a comfortably-oversampled embedding dimension,
#: with the distortion bound that oversampling is *declared* to buy
#: (asserted bounds leave head-room over the eps the dimension targets, so
#: the test pins the contract rather than the luck of one draw).
D, N = 2048, 4
FAMILIES = {
    "gaussian": (lambda seed: GaussianSketch(D, 64 * N, seed=seed), 0.75),
    "srht": (lambda seed: SRHT(D, 64 * N, seed=seed), 0.75),
    "countsketch": (lambda seed: CountSketch(D, 16 * N * N, seed=seed), 0.80),
    "countsketch-streaming": (
        lambda seed: StreamingCountSketch(D, 16 * N * N, seed=seed),
        0.80,
    ),
    "multisketch": (
        lambda seed: count_gauss(D, N, k1=32 * N * N, k2=64 * N, seed=seed),
        0.90,
    ),
}

SEEDS = st.integers(min_value=0, max_value=10_000)


# ---------------------------------------------------------------------------
# 1. embedding distortion within declared bounds
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(FAMILIES))
@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_distortion_within_declared_bound(family, seed):
    build, bound = FAMILIES[family]
    basis = np.random.default_rng(seed).standard_normal((D, N))
    sketch = build(seed)
    assert sketch.family == family
    eps = measure_subspace_distortion(sketch, basis)
    assert eps < bound, f"{family}: realised eps {eps:.3f} over declared {bound}"


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_capabilities_declare_the_embedding(family):
    build, _ = FAMILIES[family]
    caps = build(0).capabilities()
    assert caps["family"] == family
    assert caps["subspace_embedding"] is True
    assert caps["reproducible"] is True  # seeded builds are cacheable
    assert caps["supports_multi_rhs"] is True


# ---------------------------------------------------------------------------
# 2. StreamingCountSketch algebraic identities
# ---------------------------------------------------------------------------
def _stream_pair(seed: int, d: int = 256, k: int = 64):
    """Two same-state streaming sketches plus a random matrix to consume."""
    a = np.random.default_rng(seed).standard_normal((d, 8))
    left = StreamingCountSketch(d, k, seed=seed)
    right = StreamingCountSketch(d, k, seed=seed)
    return a, left, right


@settings(max_examples=10, deadline=None, derandomize=True)
@given(seed=SEEDS, split=st.integers(min_value=1, max_value=255))
def test_merge_from_of_disjoint_passes_equals_one_pass(seed, split):
    a, left, right = _stream_pair(seed)
    d = a.shape[0]
    whole = StreamingCountSketch(d, 64, seed=seed)
    whole.begin(a.shape[1])
    whole.update(np.arange(d), a)
    reference = whole.result().to_host()

    left.begin(a.shape[1])
    left.update(np.arange(split), a[:split])
    right.begin(a.shape[1])
    right.update(np.arange(split, d), a[split:])
    left.merge_from(right)
    assert left.rows_seen == d
    np.testing.assert_allclose(left.snapshot(), reference, rtol=1e-12, atol=1e-12)


@settings(max_examples=10, deadline=None, derandomize=True)
@given(seed=SEEDS, alpha=st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
def test_scale_commutes_with_the_linear_sketch(seed, alpha):
    a, sketch, _ = _stream_pair(seed)
    d = a.shape[0]
    sketch.begin(a.shape[1])
    sketch.update(np.arange(d), a)
    before = sketch.snapshot()
    sketch.scale(alpha)
    # S is linear: scaling the accumulator == sketching alpha * A.
    np.testing.assert_allclose(sketch.snapshot(), alpha * before, rtol=1e-12, atol=1e-15)


@settings(max_examples=10, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_snapshot_is_a_nondestructive_read(seed):
    a, sketch, _ = _stream_pair(seed)
    d = a.shape[0]
    sketch.begin(a.shape[1])
    sketch.update(np.arange(d // 2), a[: d // 2])
    first = sketch.snapshot()
    assert sketch.rows_seen == d // 2  # the pass is still open
    sketch.update(np.arange(d // 2, d), a[d // 2 :])
    second = sketch.snapshot()
    assert not np.allclose(first, second)  # new rows landed
    reference = StreamingCountSketch(d, 64, seed=seed)
    reference.begin(a.shape[1])
    reference.update(np.arange(d), a)
    np.testing.assert_allclose(second, reference.snapshot(), rtol=1e-12, atol=1e-12)


def test_merge_from_rejects_mismatched_state():
    a, left, _ = _stream_pair(0)
    left.begin(8)
    other_seed = StreamingCountSketch(256, 64, seed=1)
    other_seed.begin(8)
    with pytest.raises(ValueError):
        left.merge_from(other_seed)
    other_cols = StreamingCountSketch(256, 64, seed=0)
    other_cols.begin(4)
    with pytest.raises(ValueError):
        left.merge_from(other_cols)
    closed = StreamingCountSketch(256, 64, seed=0)
    with pytest.raises(RuntimeError):
        left.merge_from(closed)


# ---------------------------------------------------------------------------
# 3. cache_key stability and uniqueness
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(FAMILIES))
@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=SEEDS)
def test_cache_key_stability_equal_config_equal_sketch(family, seed):
    build, _ = FAMILIES[family]
    first, second = build(seed), build(seed)
    assert first.cache_key() == second.cache_key()
    # The key's promise: equal keys produce bit-identical sketches.
    probe = np.random.default_rng(seed + 1).standard_normal((D, 3))
    np.testing.assert_array_equal(first.sketch_host(probe), second.sketch_host(probe))


def test_cache_key_uniqueness_across_configs():
    keys = set()
    variants = [
        GaussianSketch(256, 32, seed=0),
        GaussianSketch(256, 32, seed=1),          # seed
        GaussianSketch(256, 64, seed=0),          # k
        GaussianSketch(512, 32, seed=0),          # d
        GaussianSketch(256, 32, seed=0, dtype=np.float32),  # dtype
        CountSketch(256, 32, seed=0),             # family
        CountSketch(256, 32, seed=0, variant="spmm"),  # family-specific extra
        StreamingCountSketch(256, 32, seed=0),
        SRHT(256, 32, seed=0),
        count_gauss(256, 4, k2=32, seed=0),
    ]
    for op in variants:
        key = op.cache_key()
        assert key not in keys, f"cache-key collision for {op!r}"
        keys.add(key)


def test_unseeded_cache_keys_never_alias():
    first = GaussianSketch(128, 16)
    second = GaussianSketch(128, 16)
    # Unseeded state is not reproducible from parameters, so each instance
    # must key to itself and only itself.
    assert first.cache_key() != second.cache_key()
    assert first.cache_key() == first.cache_key()
