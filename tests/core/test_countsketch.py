"""Tests for the CountSketch operators (Algorithm 2, SpMM baseline, streaming)."""

import numpy as np
import pytest

from repro.core.countsketch import CountSketch, StreamingCountSketch
from repro.gpu.executor import GPUExecutor


D, N, K = 2048, 8, 128


class TestConstruction:
    def test_structure_one_nonzero_per_column(self, executor):
        cs = CountSketch(D, K, executor=executor, seed=1)
        s = cs.explicit_matrix()
        assert s.shape == (K, D)
        nnz_per_col = np.count_nonzero(s, axis=0)
        np.testing.assert_array_equal(nnz_per_col, np.ones(D))
        assert set(np.unique(s[s != 0])) <= {-1.0, 1.0}

    def test_row_map_and_signs_exposed(self, executor):
        cs = CountSketch(D, K, executor=executor, seed=1)
        assert cs.row_map.shape == (D,)
        assert cs.signs.dtype == np.bool_
        assert cs.row_map.min() >= 0 and cs.row_map.max() < K

    def test_invalid_variant(self, executor):
        with pytest.raises(ValueError):
            CountSketch(D, K, variant="cuda", executor=executor)

    def test_embedding_dim_larger_than_input_rejected(self, executor):
        with pytest.raises(ValueError):
            CountSketch(16, 32, executor=executor)

    def test_generate_idempotent(self, executor):
        cs = CountSketch(D, K, executor=executor, seed=1)
        cs.generate()
        row_map = cs.row_map
        cs.generate()
        np.testing.assert_array_equal(cs.row_map, row_map)


class TestApplication:
    def test_apply_equals_explicit_matrix_product(self, executor, rng):
        a = rng.standard_normal((D, N))
        cs = CountSketch(D, K, executor=executor, seed=2)
        y = cs.sketch_host(a)
        np.testing.assert_allclose(y, cs.explicit_matrix() @ a, rtol=1e-12)

    def test_vector_apply(self, executor, rng):
        b = rng.standard_normal(D)
        cs = CountSketch(D, K, executor=executor, seed=2)
        np.testing.assert_allclose(cs.sketch_host(b), cs.explicit_matrix() @ b, rtol=1e-12)

    def test_matmul_operator(self, executor, rng):
        a = rng.standard_normal((D, N))
        cs = CountSketch(D, K, executor=executor, seed=2)
        np.testing.assert_allclose(cs @ a, cs.sketch_host(a), rtol=1e-15)

    def test_spmm_variant_identical_output(self, executor, rng):
        a = rng.standard_normal((D, N))
        y_atomic = CountSketch(D, K, executor=executor, seed=3).sketch_host(a)
        y_spmm = CountSketch(D, K, variant="spmm", executor=executor, seed=3).sketch_host(a)
        np.testing.assert_allclose(y_atomic, y_spmm, rtol=1e-12)

    def test_wrong_row_count_rejected(self, executor, rng):
        cs = CountSketch(D, K, executor=executor, seed=1)
        with pytest.raises(ValueError):
            cs.sketch_host(rng.standard_normal((D + 1, N)))

    def test_linearity(self, executor, rng):
        cs = CountSketch(D, K, executor=executor, seed=4)
        a = rng.standard_normal((D, N))
        b = rng.standard_normal((D, N))
        np.testing.assert_allclose(
            cs.sketch_host(2 * a - 3 * b),
            2 * cs.sketch_host(a) - 3 * cs.sketch_host(b),
            rtol=1e-10,
        )

    def test_norm_preserved_in_expectation(self, executor, rng):
        """E||Sx||^2 = ||x||^2 for the CountSketch (no scaling needed)."""
        x = rng.standard_normal(D)
        norms = []
        for seed in range(30):
            cs = CountSketch(D, 4 * K, executor=executor, seed=seed)
            norms.append(np.linalg.norm(cs.sketch_host(x)) ** 2)
        assert np.mean(norms) == pytest.approx(np.linalg.norm(x) ** 2, rel=0.15)


class TestCostModel:
    def test_atomic_kernel_charged_for_default_variant(self, executor, rng):
        cs = CountSketch(D, K, executor=executor, seed=5)
        mark = executor.mark()
        cs.sketch_host(rng.standard_normal((D, N)))
        names = [r.name for r in executor.breakdown_since(mark).records]
        assert "countsketch_atomic" in names
        assert "cusparse_spmm" not in names

    def test_spmm_kernel_charged_for_spmm_variant(self, executor, rng):
        cs = CountSketch(D, K, variant="spmm", executor=executor, seed=5)
        mark = executor.mark()
        cs.sketch_host(rng.standard_normal((D, N)))
        names = [r.name for r in executor.breakdown_since(mark).records]
        assert "cusparse_spmm" in names

    def test_atomic_faster_than_spmm_in_simulated_time(self):
        """Figure 2: the Algorithm-2 kernel beats the SpMM baseline."""
        ex = GPUExecutor(numeric=False, track_memory=False)
        d, n = 1 << 22, 128
        a = ex.empty((d, n))
        k = 2 * n * n
        mark = ex.mark()
        CountSketch(d, k, executor=ex, seed=1).apply(a)
        atomic_time = ex.elapsed_since(mark)
        mark = ex.mark()
        CountSketch(d, k, variant="spmm", executor=ex, seed=1).apply(a)
        spmm_time = ex.elapsed_since(mark)
        assert spmm_time > 2.0 * atomic_time

    def test_generation_is_cheap(self, analytic_executor):
        """Sketch gen for the CountSketch needs only d integers + d booleans."""
        d, n = 1 << 22, 128
        cs = CountSketch(d, 2 * n * n, executor=analytic_executor, seed=1)
        mark = analytic_executor.mark()
        cs.generate()
        gen_time = analytic_executor.elapsed_since(mark)
        assert gen_time < 1e-3  # well under a millisecond of simulated time


class TestStreamingCountSketch:
    def test_matches_explicit_matrix(self, executor, rng):
        a = rng.standard_normal((D, N))
        st = StreamingCountSketch(D, K, executor=executor, seed=6)
        np.testing.assert_allclose(st.sketch_host(a), st.explicit_matrix() @ a, rtol=1e-12)

    def test_streaming_in_batches_matches_one_shot(self, executor, rng):
        a = rng.standard_normal((D, N))
        st = StreamingCountSketch(D, K, executor=executor, seed=7)
        one_shot = st.sketch_host(a)

        st2 = StreamingCountSketch(D, K, executor=executor, seed=7)
        st2.generate()
        st2.begin(N)
        for start in range(0, D, 100):
            idx = np.arange(start, min(start + 100, D))
            st2.update(idx, a[idx, :])
        batched = st2.result().to_host()
        np.testing.assert_allclose(batched, one_shot, rtol=1e-10)

    def test_vector_path(self, executor, rng):
        b = rng.standard_normal(D)
        st = StreamingCountSketch(D, K, executor=executor, seed=8)
        np.testing.assert_allclose(
            st.sketch_host(b), st.explicit_matrix() @ b, rtol=1e-10, atol=1e-10
        )

    def test_update_requires_begin(self, executor):
        st = StreamingCountSketch(D, K, executor=executor, seed=9)
        with pytest.raises(RuntimeError):
            st.update([0], np.zeros((1, N)))

    def test_result_requires_pass_in_progress(self, executor):
        st = StreamingCountSketch(D, K, executor=executor, seed=9)
        with pytest.raises(RuntimeError):
            st.result()

    def test_out_of_range_indices_rejected(self, executor):
        st = StreamingCountSketch(D, K, executor=executor, seed=9)
        st.begin(N)
        with pytest.raises(ValueError):
            st.update([D + 5], np.zeros((1, N)))

    def test_bad_row_shape_rejected(self, executor):
        st = StreamingCountSketch(D, K, executor=executor, seed=9)
        st.begin(N)
        with pytest.raises(ValueError):
            st.update([0, 1], np.zeros((2, N + 1)))

    def test_no_stored_random_state(self, executor):
        """The streaming variant derives everything from the hash; generation is trivial."""
        st = StreamingCountSketch(D, K, executor=executor, seed=10)
        mark = executor.mark()
        st.generate()
        assert executor.elapsed_since(mark) < 1e-4
