"""Tests for the random-state helpers (signs, row maps, hashing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import (
    hashed_row_map_and_signs,
    rademacher_signs,
    row_sample,
    signs_to_values,
    splitmix64,
    uniform_row_map,
)


class TestRademacher:
    def test_signed_values(self, rng):
        s = rademacher_signs(rng, 1000)
        assert set(np.unique(s)) <= {-1, 1}
        # roughly balanced
        assert abs(int(s.sum())) < 200

    def test_bool_values(self, rng):
        s = rademacher_signs(rng, 1000, as_bool=True)
        assert s.dtype == np.bool_

    def test_signs_to_values_from_bool(self):
        vals = signs_to_values(np.array([True, False, True]))
        np.testing.assert_array_equal(vals, [1.0, -1.0, 1.0])

    def test_signs_to_values_from_int8(self):
        vals = signs_to_values(np.array([1, -1, 1], dtype=np.int8))
        np.testing.assert_array_equal(vals, [1.0, -1.0, 1.0])


class TestRowMapAndSample:
    def test_row_map_range(self, rng):
        r = uniform_row_map(rng, 500, 7)
        assert r.min() >= 0 and r.max() < 7
        assert r.shape == (500,)

    def test_row_map_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            uniform_row_map(rng, 0, 5)
        with pytest.raises(ValueError):
            uniform_row_map(rng, 5, 0)

    def test_row_sample_distinct_and_sorted(self, rng):
        s = row_sample(rng, 100, 40)
        assert len(np.unique(s)) == 40
        assert np.all(np.diff(s) > 0)

    def test_row_sample_too_many(self, rng):
        with pytest.raises(ValueError):
            row_sample(rng, 10, 11)


class TestHashing:
    def test_splitmix64_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        np.testing.assert_array_equal(splitmix64(x), splitmix64(x))

    def test_splitmix64_distinct_inputs_distinct_outputs(self):
        x = np.arange(10_000, dtype=np.uint64)
        assert len(np.unique(splitmix64(x))) == 10_000

    def test_hashed_row_map_in_range(self):
        rows, signs = hashed_row_map_and_signs(np.arange(5000), k=37, seed=3)
        assert rows.min() >= 0 and rows.max() < 37
        assert signs.dtype == np.bool_

    def test_hashed_row_map_depends_on_seed(self):
        idx = np.arange(1000)
        r1, s1 = hashed_row_map_and_signs(idx, 64, seed=1)
        r2, s2 = hashed_row_map_and_signs(idx, 64, seed=2)
        assert not np.array_equal(r1, r2)

    def test_hashed_row_map_reproducible(self):
        idx = np.arange(1000)
        r1, s1 = hashed_row_map_and_signs(idx, 64, seed=9)
        r2, s2 = hashed_row_map_and_signs(idx, 64, seed=9)
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(s1, s2)

    def test_hashed_row_map_roughly_uniform(self):
        rows, signs = hashed_row_map_and_signs(np.arange(64_000), k=64, seed=5)
        counts = np.bincount(rows, minlength=64)
        # each bucket expects 1000 +- a few standard deviations
        assert counts.min() > 800 and counts.max() < 1200
        assert 0.45 < signs.mean() < 0.55

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hashed_row_map_and_signs(np.arange(10), 0, seed=1)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**62), k=st.integers(min_value=1, max_value=10_000))
    def test_hashed_rows_always_in_range_property(self, seed, k):
        rows, _ = hashed_row_map_and_signs(np.arange(257), k=k, seed=seed)
        assert rows.min() >= 0
        assert rows.max() < k
