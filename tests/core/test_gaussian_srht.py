"""Tests for the Gaussian sketch and the SRHT / block SRHT."""

import numpy as np
import pytest

from repro.core.fwht import hadamard_matrix
from repro.core.gaussian import GaussianSketch
from repro.core.srht import SRHT, BlockSRHT
from repro.gpu.device import TEST_DEVICE
from repro.gpu.executor import GPUExecutor
from repro.gpu.memory import DeviceOutOfMemoryError


D, N, K = 1024, 8, 32


class TestGaussianSketch:
    def test_apply_equals_explicit_gemm(self, executor, rng):
        a = rng.standard_normal((D, N))
        g = GaussianSketch(D, K, executor=executor, seed=1)
        np.testing.assert_allclose(g.sketch_host(a), g.explicit_matrix() @ a, rtol=1e-12)

    def test_entries_scaled_by_inverse_sqrt_k(self, executor):
        g = GaussianSketch(D, K, executor=executor, seed=2)
        mat = g.explicit_matrix()
        assert float(np.std(mat)) == pytest.approx(1.0 / np.sqrt(K), rel=0.05)

    def test_vector_apply(self, executor, rng):
        b = rng.standard_normal(D)
        g = GaussianSketch(D, K, executor=executor, seed=3)
        np.testing.assert_allclose(g.sketch_host(b), g.explicit_matrix() @ b, rtol=1e-12)

    def test_norm_preserved_in_expectation(self, executor, rng):
        x = rng.standard_normal(D)
        norms = [
            np.linalg.norm(GaussianSketch(D, 256, executor=executor, seed=s).sketch_host(x)) ** 2
            for s in range(20)
        ]
        assert np.mean(norms) == pytest.approx(np.linalg.norm(x) ** 2, rel=0.15)

    def test_memory_required(self, executor):
        g = GaussianSketch(D, K, executor=executor)
        assert g.memory_required() == K * D * 8

    def test_out_of_memory_on_small_device(self):
        """The explicit Gaussian exhausts memory -- the paper's blank bars."""
        ex = GPUExecutor(TEST_DEVICE, numeric=False, track_memory=True)
        d = 1 << 22  # 4M rows
        g = GaussianSketch(d, 64, executor=ex, seed=0)  # 64 * 4M * 8 = 2.1 GB > 1 GB
        with pytest.raises(DeviceOutOfMemoryError):
            g.generate()

    def test_generation_dominates_sketch_gen_phase(self, analytic_executor):
        g = GaussianSketch(1 << 20, 256, executor=analytic_executor, seed=1)
        g.generate()
        phases = analytic_executor.breakdown().by_phase()
        assert phases.get("Sketch gen", 0.0) > 0
        # generating 256 * 2^20 doubles takes milliseconds of simulated time
        assert phases["Sketch gen"] > 1e-3

    def test_reproducible_with_seed(self, executor):
        m1 = GaussianSketch(D, K, executor=executor, seed=11).explicit_matrix()
        m2 = GaussianSketch(D, K, executor=executor, seed=11).explicit_matrix()
        np.testing.assert_array_equal(m1, m2)


class TestSRHT:
    def test_apply_equals_explicit_construction(self, executor, rng):
        """S = (1/sqrt(k)) P H D applied to A matches the definition exactly."""
        a = rng.standard_normal((64, 5))
        srht = SRHT(64, 16, executor=executor, seed=4)
        y = srht.sketch_host(a)

        signs = srht._signs.data.astype(np.float64)
        sample = srht._sample.data
        h = hadamard_matrix(64)
        expected = (h @ (a * signs[:, None]))[sample, :] / np.sqrt(16)
        np.testing.assert_allclose(y, expected, rtol=1e-10)

    def test_non_power_of_two_input_padded(self, executor, rng):
        a = rng.standard_normal((100, 4))
        srht = SRHT(100, 16, executor=executor, seed=5)
        assert srht.padded_dim == 128
        y = srht.sketch_host(a)
        assert y.shape == (16, 4)
        assert np.all(np.isfinite(y))

    def test_vector_apply_consistent_with_matrix(self, executor, rng):
        b = rng.standard_normal(256)
        srht = SRHT(256, 32, executor=executor, seed=6)
        y_vec = srht.sketch_host(b)
        y_mat = srht.sketch_host(b.reshape(-1, 1))[:, 0]
        np.testing.assert_allclose(y_vec, y_mat, rtol=1e-10)

    def test_norm_preserved_in_expectation(self, executor, rng):
        x = rng.standard_normal(512)
        norms = [
            np.linalg.norm(SRHT(512, 128, executor=executor, seed=s).sketch_host(x)) ** 2
            for s in range(20)
        ]
        assert np.mean(norms) == pytest.approx(np.linalg.norm(x) ** 2, rel=0.2)

    def test_fwht_kernel_and_syncs_charged(self, analytic_executor):
        srht = SRHT(1 << 20, 64, executor=analytic_executor, seed=1)
        a = analytic_executor.empty((1 << 20, 32))
        mark = analytic_executor.mark()
        srht.apply(a)
        records = analytic_executor.breakdown_since(mark).records
        fwht_records = [r for r in records if r.name == "fwht_radix4"]
        assert len(fwht_records) == 1
        assert fwht_records[0].launches > 1  # one launch per butterfly stage

    def test_srht_slower_than_countsketch_at_paper_scale(self):
        """Figure 2: the SRHT needs several passes over A, the CountSketch one."""
        from repro.core.countsketch import CountSketch

        ex = GPUExecutor(numeric=False, track_memory=False)
        d, n = 1 << 22, 128
        a = ex.empty((d, n))
        mark = ex.mark()
        CountSketch(d, 2 * n * n, executor=ex, seed=1).apply(a)
        count_time = ex.elapsed_since(mark)
        mark = ex.mark()
        SRHT(d, 2 * n, executor=ex, seed=1).apply(a)
        srht_time = ex.elapsed_since(mark)
        assert srht_time > 2.0 * count_time


class TestBlockSRHT:
    def test_shapes_and_finiteness(self, executor, rng):
        a = rng.standard_normal((512, 6))
        block = BlockSRHT(512, 16, n_blocks=4, executor=executor, seed=7)
        y = block.sketch_host(a)
        assert y.shape == (16, 6)
        assert np.all(np.isfinite(y))

    def test_norm_preserved_in_expectation(self, executor, rng):
        x = rng.standard_normal(1024)
        norms = [
            np.linalg.norm(BlockSRHT(1024, 128, n_blocks=4, executor=executor, seed=s).sketch_host(x)) ** 2
            for s in range(20)
        ]
        assert np.mean(norms) == pytest.approx(np.linalg.norm(x) ** 2, rel=0.25)

    def test_block_count_validation(self, executor):
        with pytest.raises(ValueError):
            BlockSRHT(512, 16, n_blocks=0, executor=executor)
        with pytest.raises(ValueError):
            BlockSRHT(64, 32, n_blocks=4, executor=executor)  # blocks smaller than k
