"""Figure 5: runtime breakdown of the least-squares solvers.

Sweeps the paper's grid over Normal Eq, sketch-and-solve (Gauss / Count /
Multi / SRHT), and rand_cholQR, printing per-phase breakdowns (the figure's
stacked bars) and asserting the headline result: the multisketched
sketch-and-solve solver beats the normal equations for wide matrices, with
the best case at d = 2^22, n = 256 ("up to 77% faster" in the paper).
"""

from repro.harness.experiments import figure5, headline_speedup
from repro.harness.report import render_breakdown_rows, render_figure_rows


def test_fig5_lstsq_times(benchmark, paper_config):
    rows = benchmark(figure5, paper_config)
    print()
    print(render_figure_rows(rows, "total_seconds", scale=1e3, unit="ms",
                             title="Figure 5: least-squares solve time"))
    print(render_breakdown_rows([r for r in rows if r["d"] == (1 << 22)],
                                title="Figure 5 breakdown (d = 2^22)"))

    t = {(r["d"], r["n"], r["method"]): r["total_seconds"] for r in rows if not r["oom"]}
    for d in (1 << 21, 1 << 22):
        # multisketch sketch-and-solve beats the normal equations for wide problems
        assert t[(d, 256, "Multi")] < t[(d, 256, "Normal Eq")]
        # the CountSketch-only solver pays for its huge GEQRF
        assert t[(d, 256, "Count")] > t[(d, 256, "Multi")]
        # rand_cholQR: slower than sketch-and-solve, still faster than the Gaussian
        assert t[(d, 128, "Multi")] < t[(d, 128, "rand_cholQR")] < t[(d, 128, "Gauss")]
    # normal equations still win for narrow problems (the crossover)
    assert t[(1 << 21, 32, "Normal Eq")] < t[(1 << 21, 32, "Multi")]

    best = headline_speedup(rows)
    print(f"\nHeadline: multisketch is {100 * best['speedup']:.0f}% faster than the normal "
          f"equations at d={best['d']}, n={best['n']} "
          f"(paper: up to 77% faster at d=2^22, n=256)")
    assert best["d"] == 1 << 22 and best["n"] == 256
    assert best["speedup"] > 0.4
