"""Closed-loop calibration acceptance: learned costs beat the analytic model.

ISSUE 8's acceptance bar, pinned as benchmarks:

* After warming up on a mixed serving workload, the calibrated estimator's
  median relative prediction error is at least **2x smaller** than the raw
  analytic model's on the same spans.
* With calibration driving deadline projections (``calibration="active"``),
  a budget that the requests *actually* meet sheds nothing and violates
  nothing -- while the analytic projection, which overestimates this shape
  by ~1.6x, sheds those same requests falsely.
* The recorded perf trajectory (``BENCH_8.json``) exists, validates against
  the bench schema, and passes the regression gate against ``BENCH_6.json``.

The demonstration shape is 1024x16 under the fixed ``sketch_precond_lsqr``
policy: the roofline model prices the LSQR iterations pessimistically there
(measured/analytic ratio ~0.63, stable across seeds), which is exactly the
miscalibration the closed loop exists to absorb.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.linalg.registry import SolveSpec, get_solver
from repro.obs.bench import load_bench, validate_bench
from repro.serving import AsyncSketchServer, DeadlineExceededError

pytestmark = pytest.mark.serving

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SOLVER = "sketch_precond_lsqr"
#: (d, n) shapes the mixed warm-up covers -- each lands in its own
#: calibration bucket with its own measured/analytic ratio.
SHAPES = ((1024, 16), (2048, 32), (4096, 64))


def _runtime(**overrides) -> AsyncSketchServer:
    kw = dict(
        shards=1, seed=0, workers=1, queue_depth=64,
        solver=SOLVER, policy="fixed",
    )
    kw.update(overrides)
    return AsyncSketchServer(**kw)


def _warm_up(runtime: AsyncSketchServer, rng, per_shape: int = 8) -> None:
    """Serve ``per_shape`` unbudgeted requests of every shape, serially."""
    for d, n in SHAPES:
        for _ in range(per_shape):
            fut = runtime.submit(rng.standard_normal((d, n)), rng.standard_normal(d))
            runtime.drain()
            assert fut.exception() is None


def test_calibrated_error_at_least_2x_smaller_than_analytic():
    rng = np.random.default_rng(0)
    runtime = _runtime(calibration="observe")
    try:
        _warm_up(runtime, rng)
        est = runtime.calibration
        # Score only the post-warm-up half: the first samples of each
        # bucket are gated to the analytic fallback by construction.
        window = len(SHAPES) * 4
        summary = est.error_summary(window=window)
        calibrated = summary["calibrated_median_rel_error"]
        analytic = summary["analytic_median_rel_error"]
        assert analytic >= 2.0 * calibrated, (
            f"calibration did not earn its keep: analytic median error "
            f"{analytic:.4f} vs calibrated {calibrated:.4f}"
        )
    finally:
        runtime.stop()


def test_active_calibration_stops_false_shedding_with_zero_violations():
    spec = SolveSpec(d=1024, n=16, nrhs=1)
    analytic = get_solver(SOLVER).estimate_seconds(spec)
    # Budget between the true cost (~0.63 * analytic, plus ~1e-5s result
    # transfer) and the analytic projection: meetable in reality, hopeless
    # on paper.
    budget = 0.8 * analytic

    def _serve_budgeted(runtime, rng, requests=8):
        served, shed = [], 0
        for _ in range(requests):
            a = rng.standard_normal((1024, 16))
            fut = runtime.submit(a, rng.standard_normal(1024), latency_budget=budget)
            runtime.drain()
            try:
                served.append(fut.result(timeout=30.0))
            except DeadlineExceededError:
                shed += 1
        return served, shed

    # Analytic projection (calibration observes but does not steer):
    # every request is shed even though all of them would have met budget.
    rng = np.random.default_rng(1)
    observe = _runtime(calibration="observe")
    try:
        _warm_up(observe, rng)
        served, shed = _serve_budgeted(observe, rng)
    finally:
        observe.stop()
    assert shed > 0, "budget was not tight enough to trip the analytic projection"
    assert all(r.simulated_seconds <= budget for r in served)

    # Calibrated projection: same warm-up, same budgeted stream -- nothing
    # shed, and every completed request actually lands inside its budget
    # (shedding precision did not come at the price of violations).
    rng = np.random.default_rng(1)
    active = _runtime(calibration="active")
    try:
        _warm_up(active, rng)
        served, shed = _serve_budgeted(active, rng)
        snapshot = active.telemetry.snapshot()
    finally:
        active.stop()
    assert shed == 0, f"calibrated projection falsely shed {shed} meetable requests"
    assert len(served) == 8
    violations = sum(1 for r in served if r.simulated_seconds > budget)
    assert violations == 0
    assert snapshot.get("requests_shed", 0.0) == 0.0


def test_bench_record_exists_validates_and_passes_regression_gate():
    current_path = REPO_ROOT / "BENCH_8.json"
    previous_path = REPO_ROOT / "BENCH_6.json"
    assert current_path.exists(), "BENCH_8.json missing -- run tools/record_bench.py"
    current = load_bench(current_path)
    validate_bench(current)
    import sys

    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from compare_bench import compare
    finally:
        sys.path.pop(0)
    lines, regressions = compare(
        current,
        load_bench(previous_path),
        max_throughput_drop=0.25,
        max_p95_growth=1.0,
        max_residual_growth=0.5,
    )
    assert lines, "comparison produced no report lines"
    assert regressions == [], "\n".join(regressions)
