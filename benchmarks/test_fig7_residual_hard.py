"""Figure 7: relative least-squares residuals on the "hard" (high-noise) problem.

b = A e + eta with eta ~ N(3, 2): the residual is large, so the O(1)
distortion of sketch-and-solve is visible but bounded.  Runs numerically on a
scaled-down grid (see conftest).
"""

import numpy as np
import pytest

from repro.harness.experiments import figure6, figure7
from repro.harness.report import render_figure_rows


def test_fig7_residual_hard(benchmark, accuracy_config):
    rows = benchmark.pedantic(figure7, args=(accuracy_config,), rounds=1, iterations=1)
    print()
    print(render_figure_rows(rows, "relative_residual",
                             title="Figure 7: relative residual, hard problem"))

    res = {(r["d"], r["n"], r["method"]): r["relative_residual"] for r in rows}
    sizes = {(r["d"], r["n"]) for r in rows}
    for (d, n) in sizes:
        truth = res[(d, n, "QR")]
        assert np.isfinite(truth)
        assert res[(d, n, "Normal Eq")] == pytest.approx(truth, rel=1e-6)
        for method in ("Gauss", "Count", "Multi", "SRHT"):
            assert truth * (1 - 1e-9) <= res[(d, n, method)] <= 2.0 * truth


def test_hard_problem_residuals_exceed_easy(accuracy_config):
    """The hard problem's residuals sit well above the easy problem's (Figure 6 vs 7)."""
    easy = {(r["d"], r["n"], r["method"]): r["relative_residual"] for r in figure6(accuracy_config)}
    hard = {(r["d"], r["n"], r["method"]): r["relative_residual"] for r in figure7(accuracy_config)}
    for key, value in hard.items():
        assert value > easy[key]
