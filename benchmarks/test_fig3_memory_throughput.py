"""Figure 3: percent of peak memory throughput achieved by each sketch."""

from repro.harness.experiments import figure2, figure3
from repro.harness.report import render_figure_rows


def test_fig3_memory_throughput(benchmark, paper_config):
    fig2_rows = figure2(paper_config)
    rows = benchmark(figure3, paper_config, rows=fig2_rows)
    print()
    print(render_figure_rows(rows, "percent_peak_bandwidth", unit="% of peak",
                             title="Figure 3: percent of peak memory throughput"))

    pct = {(r["d"], r["n"], r["method"]): r["percent_peak_bandwidth"] for r in rows if not r["oom"]}
    for (d, n, method), value in pct.items():
        assert 0.0 <= value <= 100.0
        if method == "Count (Alg 2)":
            assert 40.0 <= value <= 65.0   # paper: 50-60% of peak
        if method == "Count (SPMM)":
            assert value <= 30.0           # paper: ~20% of peak
        if method == "SRHT":
            assert 50.0 <= value <= 80.0   # paper: 60-70% of peak
    # the dedicated kernel always achieves better bandwidth than the SpMM baseline
    for (d, n, method) in list(pct):
        if method == "Count (Alg 2)":
            assert pct[(d, n, method)] > pct[(d, n, "Count (SPMM)")]
