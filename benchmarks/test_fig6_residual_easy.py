"""Figure 6: relative least-squares residuals on the "easy" (low-noise) problem.

b = A e + eta with eta ~ N(0, 0.01), kappa(A) = 100.  All solvers should land
within an O(1) factor of the true residual; the sketched solvers inflate it
only slightly.  Runs numerically on a scaled-down grid (see conftest).
"""

import numpy as np
import pytest

from repro.harness.experiments import figure6
from repro.harness.report import render_figure_rows


def test_fig6_residual_easy(benchmark, accuracy_config):
    rows = benchmark.pedantic(figure6, args=(accuracy_config,), rounds=1, iterations=1)
    print()
    print(render_figure_rows(rows, "relative_residual",
                             title="Figure 6: relative residual, easy problem"))

    res = {(r["d"], r["n"], r["method"]): r["relative_residual"] for r in rows}
    sizes = {(r["d"], r["n"]) for r in rows}
    for (d, n) in sizes:
        truth = res[(d, n, "QR")]
        assert np.isfinite(truth) and truth > 0
        # exact solvers agree with QR
        assert res[(d, n, "Normal Eq")] == pytest.approx(truth, rel=1e-6)
        assert res[(d, n, "rand_cholQR")] == pytest.approx(truth, rel=1e-6)
        # sketched solvers: within the O(1) distortion factor, never below the optimum
        for method in ("Gauss", "Count", "Multi", "SRHT"):
            assert truth * (1 - 1e-9) <= res[(d, n, method)] <= 2.0 * truth
