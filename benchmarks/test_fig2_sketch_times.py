"""Figure 2: sketch generation + application time on the paper's size grid.

Sweeps d in {2^21, 2^22, 2^23} and n in {32, 64, 128, 256} over Gram, Gauss,
Count (Alg 2), Count (SPMM), Multi, and SRHT, printing the same series the
figure plots (milliseconds, split into gen/apply), and asserts the headline
shape: the Algorithm-2 CountSketch and the multisketch beat the Gram matrix
for wide matrices and the SpMM baseline everywhere.
"""

from repro.harness.experiments import figure2
from repro.harness.report import render_figure_rows


def test_fig2_sketch_times(benchmark, paper_config):
    rows = benchmark(figure2, paper_config)
    print()
    print(render_figure_rows(rows, "total_seconds", scale=1e3, unit="ms",
                             title="Figure 2: total sketch time"))
    print(render_figure_rows(rows, "gen_seconds", scale=1e3, unit="ms",
                             title="Figure 2: sketch generation time"))
    print(render_figure_rows(rows, "apply_seconds", scale=1e3, unit="ms",
                             title="Figure 2: sketch apply time"))

    t = {(r["d"], r["n"], r["method"]): r["total_seconds"] for r in rows if not r["oom"]}
    for d in (1 << 21, 1 << 22):
        # CountSketch/multisketch beat the Gram matrix for wide matrices ...
        assert t[(d, 256, "Count (Alg 2)")] < t[(d, 256, "Gram")]
        assert t[(d, 256, "Multi")] < t[(d, 256, "Gram")]
        # ... the Gaussian does not ...
        assert t[(d, 256, "Gauss")] > t[(d, 256, "Gram")]
        # ... and the dedicated kernel always beats cuSPARSE SpMM.
        for n in (32, 64, 128, 256):
            assert t[(d, n, "Count (Alg 2)")] < t[(d, n, "Count (SPMM)")]
