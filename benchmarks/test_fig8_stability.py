"""Figure 8: least-squares residual versus cond(A) for b = A e.

The paper sweeps kappa(A) from 1 to 1e20 at d = 2^17, n = 16: the normal
equations fail beyond kappa ~ 1e8 (u^{-1/2}) while the sketch-and-solve
solvers track the QR solver down to kappa ~ u^{-1}.  The benchmark uses a
smaller d by default (set REPRO_BENCH_SCALE=scaled for d = 2^17-class runs);
the stability story is independent of d.
"""

import os

import numpy as np

from repro.harness.experiments import figure8
from repro.harness.report import render_figure_rows

COND_VALUES = [1e0, 1e2, 1e4, 1e6, 1e8, 1e10, 1e12, 1e14, 1e16]


def _dimension() -> int:
    return (1 << 17) if os.environ.get("REPRO_BENCH_SCALE") == "scaled" else (1 << 13)


def test_fig8_stability(benchmark):
    d = _dimension()
    rows = benchmark.pedantic(
        figure8, kwargs={"cond_values": COND_VALUES, "d": d, "n": 16, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print(render_figure_rows(rows, "relative_residual",
                             title=f"Figure 8: residual vs cond(A), d={d}, n=16"))

    res = {(r["cond"], r["method"]): r for r in rows}

    # Well-conditioned regime: every solver is accurate.
    for method in ("Normal Eq", "Gauss", "Count", "Multi", "QR"):
        assert res[(1e2, method)]["relative_residual"] < 1e-10

    # Beyond kappa ~ u^{-1/2} the normal equations have failed or lost accuracy ...
    bad_ne = res[(1e12, "Normal Eq")]
    assert bad_ne["failed"] or bad_ne["relative_residual"] > 1e-8

    # ... while the sketched solvers keep tracking the QR reference.
    for cond in (1e10, 1e12, 1e14):
        for method in ("Multi", "Count", "Gauss"):
            assert res[(cond, method)]["relative_residual"] < 1e-4
        assert res[(cond, "QR")]["relative_residual"] < 1e-6

    # Monotone degradation of the normal equations with conditioning.
    ne_curve = [res[(c, "Normal Eq")]["relative_residual"] for c in (1e2, 1e6, 1e10)]
    ne_curve = [v if np.isfinite(v) else 1.0 for v in ne_curve]
    assert ne_curve[0] < ne_curve[1] < ne_curve[2] or ne_curve[2] >= 1e-2
