"""Problem-class acceptance: ridge through the planner, low-rank accuracy.

The acceptance bar for ``repro.problems`` (ISSUE 4):

1. Ridge requests route through the planner with recorded attempted
   chains, and the achieved ridge-objective residual matches a direct
   dense ridge solve within 1.1x on the benchmark workloads -- including
   the ill-conditioned/small-lambda regime where the regularized normal
   equations break down and the chain rescues the request.
2. Frequent Directions' rank-``k`` Frobenius error is within ``1 + 0.5``
   of the truncated-SVD optimum on a decaying-spectrum matrix (the
   classical FD bound at ``ell = 2k`` is ``sqrt(2) ~ 1.41``, safely
   inside), and the randomized range finder meets the same bar.

All accuracy numbers are real floating point; all timing is simulated H100
seconds, so every number here is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.experiments import problem_classes
from repro.harness.report import format_table
from repro.problems import (
    RIDGE_SOLVERS,
    dense_ridge_reference,
    lowrank_approx,
    ridge_residuals,
    solve_ridge,
)
from repro.theory.complexity import fd_error_bound
from repro.workloads import decaying_spectrum_matrix, make_ridge_problem

pytestmark = pytest.mark.planner  # routing acceptance rides the planner subset

D, N = 4096, 32
RANK = 8

#: The ridge benchmark workloads: (cond, lam_rel) spanning benign, healthy-
#: lambda-on-hard-matrix, and effectively-unregularized regimes.
RIDGE_CASES = ((1e2, 1e-4), (1e6, 1e-4), (1e10, 1e-6), (1e12, 1e-20))


class TestRidgeAcceptance:
    @pytest.mark.parametrize("cond,lam_rel", RIDGE_CASES)
    def test_residual_within_1_1x_of_dense_reference(self, cond, lam_rel):
        problem = make_ridge_problem(D, N, cond=cond, lam_rel=lam_rel, seed=11)
        result = solve_ridge(problem.a, problem.b, problem.lam)
        assert not result.failed
        x_ref = dense_ridge_reference(problem.a, problem.b, problem.lam)
        _, ref_rel, _ = ridge_residuals(problem.a, problem.b, x_ref, problem.lam)
        assert result.relative_residual <= 1.1 * ref_rel

    @pytest.mark.parametrize("cond,lam_rel", RIDGE_CASES)
    def test_attempted_chain_recorded_and_ridge_only(self, cond, lam_rel):
        problem = make_ridge_problem(D, N, cond=cond, lam_rel=lam_rel, seed=11)
        result = solve_ridge(problem.a, problem.b, problem.lam)
        attempted = result.attempted_solvers
        assert len(attempted) >= 1
        assert set(attempted) <= set(RIDGE_SOLVERS)
        assert result.extra["attempted"] == "->".join(attempted)

    def test_breakdown_regime_is_rescued(self):
        """cond=1e12 with lam_rel=1e-20 breaks the regularized POTRF when it
        runs; whatever the planner chose, the request must not fail and must
        still match the dense reference."""
        problem = make_ridge_problem(D, N, cond=1e12, lam_rel=1e-20, seed=13)
        from repro.linalg.planner import SolvePlan, execute_plan
        from repro.linalg.registry import SolveSpec

        spec = SolveSpec(d=D, n=N, regularization=problem.lam)
        forced = SolvePlan(
            solver="ridge_normal_equations",
            chain=("ridge_normal_equations", "ridge_precond_lsqr", "ridge_qr"),
            kind="multisketch",
            embedding_dim=2 * N,
            cond_estimate=problem.cond,
            policy="cheapest_accurate",
            costs={},
        )
        result = execute_plan(forced, problem.a, problem.b, spec)
        assert not result.failed
        assert result.extra["fallbacks"] >= 1.0
        assert "Cholesky" in result.extra["fallback_reasons"]
        x_ref = dense_ridge_reference(problem.a, problem.b, problem.lam)
        _, ref_rel, _ = ridge_residuals(problem.a, problem.b, x_ref, problem.lam)
        assert result.relative_residual <= 1.1 * ref_rel


class TestLowRankAcceptance:
    @pytest.fixture(scope="class")
    def problem(self):
        return decaying_spectrum_matrix(D, N, rank=RANK, decay=0.5, seed=17)

    def test_frequent_directions_within_1_5x_of_optimum(self, problem):
        result = lowrank_approx(problem.a, RANK, method="frequent_directions")
        optimum = problem.optimal_error(RANK)
        assert result.relative_error <= (1.0 + 0.5) * optimum
        # ... and inside the classical FD bound at ell = 2k.
        assert result.relative_error <= fd_error_bound(
            problem.singular_values, 2 * RANK, RANK
        ) * optimum * (1.0 + 1e-9)

    def test_rangefinder_within_1_5x_of_optimum(self, problem):
        result = lowrank_approx(problem.a, RANK, power_iters=1, seed=17)
        assert result.relative_error <= (1.0 + 0.5) * problem.optimal_error(RANK)

    def test_fd_state_independent_of_stream_length(self, problem):
        short = lowrank_approx(problem.a[: D // 4], RANK, method="frequent_directions")
        full = lowrank_approx(problem.a, RANK, method="frequent_directions")
        assert short.extra["state_floats"] == full.extra["state_floats"]


def test_problem_classes_table(capsys):
    """Render the harness table (visible with ``pytest -s``).

    Runs at a compute-bound size (d = 2^16, n = 64) where the routing story
    is visible: healthy-lambda cases land on the regularized normal
    equations (the lambda shift caps the effective conditioning) while the
    effectively-unregularized kappa=1e12 case routes away from them.
    """
    rows = problem_classes(d=1 << 16, n=64, rank=RANK)
    ridge_rows = [r for r in rows if r["problem"] == "ridge"]
    lowrank_rows = [r for r in rows if r["problem"] == "lowrank"]
    assert all(r["failed"] == 0.0 for r in ridge_rows)
    assert all(r["residual_ratio"] <= 1.1 for r in ridge_rows)
    assert all(r["error_ratio"] <= 1.5 for r in lowrank_rows)
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                columns=[
                    "problem",
                    "method",
                    "attempted",
                    "cond",
                    "lam_rel",
                    "residual_ratio",
                    "error_ratio",
                    "fallbacks",
                    "simulated_seconds",
                ],
                title=(
                    "repro.problems acceptance: ridge via the planner "
                    "(residual vs dense direct) + low-rank vs truncated-SVD optimum"
                ),
            )
        )
