"""Ablation benchmarks for the implementation choices called out in the paper.

Three design decisions from Sections 5-6.1 are isolated here:

* GEMM versus SYRK for the Gram matrix ("SyRK's performance is much worse in
  practice than GeMM").
* The multisketch transpose trick (reinterpreting the row-major CountSketch
  output instead of transposing it).
* The shared-memory staging of the FWHT (how many global passes the radix-4
  transform needs as a function of shared memory).
"""

from repro.core.fwht import fwht_global_passes
from repro.core.multisketch import count_gauss
from repro.gpu.executor import GPUExecutor
from repro.harness.report import format_table

D, N = 1 << 22, 256


def _analytic_executor() -> GPUExecutor:
    return GPUExecutor(numeric=False, track_memory=False)


def test_ablation_gram_gemm_vs_syrk(benchmark):
    def run():
        ex = _analytic_executor()
        a = ex.empty((D, N))
        mark = ex.mark()
        ex.blas.gram(a, use_syrk=False)
        gemm_time = ex.elapsed_since(mark)
        mark = ex.mark()
        ex.blas.gram(a, use_syrk=True)
        syrk_time = ex.elapsed_since(mark)
        return gemm_time, syrk_time

    gemm_time, syrk_time = benchmark(run)
    print()
    print(format_table([
        {"variant": "Gram via GEMM", "ms": gemm_time * 1e3},
        {"variant": "Gram via SYRK", "ms": syrk_time * 1e3},
    ], title=f"Ablation: Gram matrix GEMM vs SYRK (d=2^22, n={N})"))
    # The paper computes the Gram matrix with GEMM because SYRK is slower in practice.
    assert syrk_time > 0.9 * gemm_time


def test_ablation_transpose_trick(benchmark):
    def run():
        ex1 = _analytic_executor()
        count_gauss(D, N, executor=ex1, seed=1, transpose_trick=True).apply(ex1.empty((D, N)))
        ex2 = _analytic_executor()
        count_gauss(D, N, executor=ex2, seed=1, transpose_trick=False).apply(ex2.empty((D, N)))
        return ex1.elapsed, ex2.elapsed

    with_trick, without_trick = benchmark(run)
    print()
    print(format_table([
        {"variant": "reinterpret + small transpose (paper)", "ms": with_trick * 1e3},
        {"variant": "transpose full intermediate", "ms": without_trick * 1e3},
    ], title="Ablation: Section 6.1 multisketch layout trick"))
    assert with_trick < without_trick


def test_ablation_fwht_shared_memory_staging(benchmark):
    def run():
        return {
            smem: fwht_global_passes(1 << 22, shared_memory_elems=smem, radix=4)
            for smem in (256, 1024, 6144, 16384, 65536)
        }

    passes = benchmark(run)
    print()
    print(format_table(
        [{"shared_memory_doubles": k, "global_passes": v} for k, v in passes.items()],
        title="Ablation: FWHT global passes vs shared-memory size (d = 2^22)",
    ))
    values = list(passes.values())
    assert values == sorted(values, reverse=True)  # more shared memory, fewer passes
    assert values[-1] < values[0]
