"""Solver-routing benchmark: the adaptive planner vs fixed-solver serving.

Acceptance criteria of the registry + planner refactor (ISSUE 2):

* on the Figure-6/7-style easy+hard conditioning sweeps, the adaptive policy
  matches the best fixed solver's accuracy (everything it serves meets the
  accuracy target the best fixed solver meets) while being at least 1.5x
  faster in simulated makespan than an always-QR server;
* a hard-conditioned request that previously (fixed normal-equations
  serving) returned ``failed=True`` now succeeds via the planner's
  routing / fallback chain.
"""

from __future__ import annotations

import weakref

import numpy as np
import pytest

from repro.harness import solver_policy
from repro.linalg.conditioning import matrix_with_condition
from repro.linalg.planner import SolvePlan, execute_plan
from repro.serving import SketchServer

pytestmark = [pytest.mark.serving, pytest.mark.planner]

ACCURACY_TARGET = 1e-6


@pytest.fixture(scope="module")
def routing_rows():
    return solver_policy(accuracy_target=ACCURACY_TARGET, seed=0)


def _row(rows, policy, solver=None):
    for r in rows:
        if r["policy"] == policy and (solver is None or r["solver"] == solver):
            return r
    raise AssertionError(f"no row for policy={policy} solver={solver}")


class TestAdaptiveRouting:
    def test_adaptive_matches_best_fixed_accuracy(self, routing_rows):
        adaptive = _row(routing_rows, "adaptive")
        # Every regime the best fixed solver serves within the target, the
        # adaptive policy serves within the target too.
        assert adaptive["worst_easy_residual"] < ACCURACY_TARGET
        assert adaptive["worst_hard_residual"] < ACCURACY_TARGET
        best_fixed_hard = min(
            r["worst_hard_residual"] for r in routing_rows if r["policy"] == "fixed"
        )
        assert adaptive["worst_hard_residual"] < 100 * best_fixed_hard

    def test_adaptive_at_least_1_5x_faster_than_always_qr(self, routing_rows):
        adaptive = _row(routing_rows, "adaptive")
        always_qr = _row(routing_rows, "fixed", "qr")
        speedup = always_qr["makespan_seconds"] / adaptive["makespan_seconds"]
        assert speedup >= 1.5, f"adaptive only {speedup:.2f}x faster than always-QR"

    def test_cheapest_accurate_beats_always_qr_too(self, routing_rows):
        cheapest = _row(routing_rows, "cheapest_accurate")
        always_qr = _row(routing_rows, "fixed", "qr")
        assert cheapest["makespan_seconds"] < always_qr["makespan_seconds"]
        assert cheapest["failed_requests"] == 0

    def test_routing_uses_more_than_one_solver(self, routing_rows):
        adaptive = _row(routing_rows, "adaptive")
        assert "," in adaptive["executed_solvers"], (
            "the sweep spans regimes with different cheapest-admissible "
            f"solvers, got only {adaptive['executed_solvers']}"
        )


class TestHardRequestsRescued:
    def test_fixed_normal_equations_fails_and_planner_succeeds(self, routing_rows):
        fixed_ne = _row(routing_rows, "fixed", "normal_equations")
        adaptive = _row(routing_rows, "adaptive")
        assert fixed_ne["failed_requests"] > 0, "the hard sweep should break POTRF"
        assert adaptive["failed_requests"] == 0
        assert np.isinf(fixed_ne["worst_hard_residual"]) or (
            fixed_ne["worst_hard_residual"] > 1e-2
        )

    def test_runtime_fallback_chain_rescues_a_potrf_breakdown(self):
        """The literal failed=True -> fallback-chain -> success path.

        A plan whose first link is the normal equations on a kappa=1e10
        matrix (where POTRF must break) is executed end-to-end: the chain
        walks to the preconditioned solvers, the result succeeds, and the
        attempted chain plus the original failure reason survive on it.
        """
        d, n = 4096, 16
        a = matrix_with_condition(d, n, 1e10, seed=3)
        b = a @ np.ones(n)
        plan_ = SolvePlan(
            solver="normal_equations",
            chain=("normal_equations", "rand_cholqr", "sketch_precond_lsqr"),
            kind="multisketch",
            embedding_dim=2 * n,
            cond_estimate=1e10,
            policy="cheapest_accurate",
            costs={},
        )
        result = execute_plan(plan_, a, b)
        assert not result.failed
        assert result.relative_residual < 1e-8
        assert result.attempted_solvers[0] == "normal_equations"
        assert len(result.attempted_solvers) >= 2
        assert "Cholesky" in result.failure_reason

    def test_served_fallback_after_optimistic_conditioning_estimate(self):
        """Serving-layer rescue: the probe is poisoned to look benign, the
        planner routes to the normal equations, POTRF breaks at runtime and
        the batch is rescued by the fallback chain instead of failing."""
        d, n = 1 << 16, 64
        a = matrix_with_condition(d, n, 1e10, seed=5) * np.sqrt(float(d) * n)
        server = SketchServer(policy="cheapest_accurate", shards=1, seed=0,
                              max_batch=8, accuracy_target=1e-2)
        server._cond_cache[(id(a), a.shape)] = (weakref.ref(a), (100.0, None))  # deceive the probe
        for _ in range(8):
            server.submit(a, a @ np.ones(n))
        responses = server.flush()
        for resp in responses:
            assert resp.extra["failed"] == 0.0
            assert resp.fallbacks >= 1
            assert resp.extra["attempted"].startswith("normal_equations->")
            assert resp.executed_solver != "normal_equations"
            assert resp.relative_residual < 1e-2
        assert server.stats()["fallback_batches"] == 1.0
