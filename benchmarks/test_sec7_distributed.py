"""Section 7: distributed block-row sketching cost comparison.

The paper's Section 7 is analytical; this benchmark makes it executable.  It
(1) sweeps process counts through the closed-form communication model and
(2) runs the simulated distributed sketches on a modest numeric problem, and
checks the section's conclusions: the CountSketch communicates the most, the
multisketch matches the Gaussian's communication volume with far cheaper
per-process compute, and the block SRHT is dominated by the multisketch.
"""

import numpy as np

from repro.distributed import (
    BlockRowMatrix,
    SimComm,
    distributed_countsketch,
    distributed_gaussian_sketch,
    distributed_multisketch,
)
from repro.distributed.cost_model import sketch_communication_volume
from repro.harness.experiments import section7_distributed
from repro.harness.report import format_table


def test_sec7_communication_table(benchmark):
    rows = benchmark(section7_distributed, 1 << 22, 128, (2, 4, 8, 16, 32, 64))
    print()
    print(format_table(rows, columns=["p", "method", "embedding_dim", "message_bytes",
                                      "broadcast_bytes", "comm_seconds"],
                       title="Section 7: communication volume per sketch"))
    by = {(r["p"], r["method"]): r for r in rows}
    for p in (2, 8, 64):
        assert by[(p, "countsketch")]["message_bytes"] > by[(p, "block_srht")]["message_bytes"]
        assert by[(p, "block_srht")]["message_bytes"] > by[(p, "gaussian")]["message_bytes"]
        assert by[(p, "multisketch")]["message_bytes"] == by[(p, "gaussian")]["message_bytes"]


def test_sec7_simulated_distributed_sketches():
    d, n, p = 1 << 16, 32, 8
    a = np.random.default_rng(0).standard_normal((d, n))
    dist = BlockRowMatrix.from_global(a, p)
    k1, k2 = 2 * n * n, 2 * n

    gauss = distributed_gaussian_sketch(dist, k2, SimComm(p), seed=1)
    count = distributed_countsketch(dist, k1, SimComm(p), seed=1)
    multi = distributed_multisketch(dist, k1, k2, SimComm(p), seed=1)

    print()
    print(format_table(
        [
            {"method": r.method, "k": r.k, "max_rank_compute_ms": r.max_rank_compute * 1e3,
             "comm_ms": r.comm_seconds * 1e3, "total_ms": r.total_seconds * 1e3}
            for r in (gauss, count, multi)
        ],
        title=f"Section 7: simulated distributed sketches (d=2^16, n={n}, p={p})",
    ))

    # The numeric results are real: every reduced sketch has its final shape.
    assert gauss.sketch.shape == (k2, n)
    assert count.sketch.shape == (k1, n)
    assert multi.sketch.shape == (k2, n)

    # Per-rank compute and end-to-end ordering are asserted on the
    # *deterministic* closed-form cost model rather than the simulated
    # wall-clock values: at this deliberately small size the measured times
    # are dominated by fixed kernel-launch overheads, so the compute gap
    # between the sketches is below the noise floor of the simulation.
    est = {m: sketch_communication_volume(m, d, n, p) for m in
           ("gaussian", "countsketch", "multisketch")}
    # Per-rank arithmetic: the dense Gaussian GEMM is the most expensive by far.
    assert est["multisketch"].per_process_flops < est["gaussian"].per_process_flops
    assert est["countsketch"].per_process_flops < est["gaussian"].per_process_flops
    # Communication: the CountSketch reduces a k1 x n message, the others k2 x n.
    # (The measured bytes agree with the model because the reduction sizes are
    # exact, not timing-dependent.)
    assert count.comm_bytes > multi.comm_bytes
    assert multi.comm_bytes == gauss.comm_bytes
    assert est["countsketch"].message_bytes > est["multisketch"].message_bytes
    assert est["multisketch"].message_bytes == est["gaussian"].message_bytes
    # End to end the multisketch wins -- the section's conclusion: it matches
    # the Gaussian's reduce volume at a fraction of the per-rank arithmetic,
    # and it reduces a factor n less data than the CountSketch.
    assert est["countsketch"].message_bytes / est["multisketch"].message_bytes == n
    # The multisketch-vs-CountSketch ordering *is* asserted on the simulation:
    # the CountSketch's k1 x n reduction is a factor n more communication, a
    # structural gap far above the launch-overhead noise floor (unlike the
    # microseconds separating multi and gauss compute above).
    assert multi.total_seconds < count.total_seconds
    assert multi.comm_seconds < count.comm_seconds
