"""Observability acceptance: tracing costs nothing on the simulated clock.

ISSUE 6's acceptance bar: under a mixed load, (a) at least 99% of admitted
requests produce a *complete* span tree, and (b) enabling tracing costs at
most 5% of simulated-clock throughput.  The tracer only *reads* shard
clocks that the executors already advanced, so on the simulated clock the
overhead is zero by construction -- these benchmarks pin that property so a
future change that starts charging device time for instrumentation fails
loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import AsyncSketchServer
from repro.serving.server import ServerConfig, SketchServer

pytestmark = pytest.mark.serving


def _drive_sync(tracing: bool, seed: int = 0, n_requests: int = 24):
    """Identical request stream against a fresh server; returns (server, rps)."""
    rng = np.random.default_rng(seed)
    server = SketchServer(
        ServerConfig(shards=2, seed=7, max_batch=8, tracing=tracing)
    )
    for _ in range(n_requests):
        a = rng.standard_normal((384, 16))
        b = rng.standard_normal(384)
        server.submit(a, b)
    server.flush()
    stats = server.stats()
    return server, stats["requests_per_second"], stats["makespan_seconds"]


def test_tracing_overhead_within_five_percent_of_throughput():
    _, rps_off, makespan_off = _drive_sync(tracing=False)
    server_on, rps_on, makespan_on = _drive_sync(tracing=True)
    assert server_on.tracer.traces_completed == 24
    # Identical request stream, identical placement: the simulated clock
    # must not notice the tracer at all (acceptance bar allows 5%).
    assert rps_on >= 0.95 * rps_off
    assert makespan_on == pytest.approx(makespan_off)


def test_mixed_load_span_trees_are_complete_for_admitted_requests():
    rng = np.random.default_rng(1)
    runtime = AsyncSketchServer(shards=2, seed=3, workers=3, queue_depth=128)
    try:
        futures = []
        for _ in range(16):
            a = rng.standard_normal((256, 12))
            futures.append(runtime.submit(a, rng.standard_normal(256)))
        for _ in range(6):
            a = rng.standard_normal((192, 10))
            futures.append(runtime.submit_ridge(a, rng.standard_normal(192), 0.1))
        session = runtime.open_stream(12)
        for _ in range(4):
            rows = rng.standard_normal((96, 12))
            futures.append(runtime.append_rows(session, rows, rng.standard_normal(96)))
        futures.append(runtime.query_solution(session))
        runtime.drain()
        for f in futures:
            assert f.exception() is None

        tracer = runtime.tracer
        admitted = tracer.traces_started
        assert admitted == len(futures)
        complete = sum(1 for root in tracer.traces() if root.is_complete())
        assert tracer.traces_completed == complete
        assert complete >= 0.99 * admitted  # acceptance: >= 99% (here: all)
    finally:
        runtime.stop()


def _drive_runtime_burst(tracing: bool, trace_sample: int = 1):
    """One 12-request burst through a single-worker runtime; sorted latencies."""
    rng = np.random.default_rng(5)
    runtime = AsyncSketchServer(
        config=ServerConfig(
            shards=2, seed=11, max_batch=4, tracing=tracing, trace_sample=trace_sample
        ),
        workers=1,
        queue_depth=64,
    )
    try:
        # Admit the whole burst before dispatching any of it (the
        # perf-trajectory idiom): the load itself is then deterministic, so
        # the only thing left that could move the simulated latencies is the
        # observability configuration under test.
        runtime.pause()
        futures = []
        for _ in range(12):
            a = rng.standard_normal((256, 12))
            futures.append(runtime.submit(a, rng.standard_normal(256)))
        runtime.resume()
        runtime.drain()
        latencies = sorted(f.result().simulated_seconds for f in futures)
    finally:
        runtime.stop()
    return latencies


def test_runtime_tracing_leaves_simulated_latencies_unchanged():
    """Same single-worker load with tracing on/off: identical lane latency."""
    np.testing.assert_allclose(_drive_runtime_burst(True), _drive_runtime_burst(False))


def test_runtime_latencies_invariant_across_tracing_and_sampling_configs():
    """Admission stamps are epoch-based, so simulated latencies cannot depend
    on how observability config shifts the wall-clock submitter/worker race.

    Regression test for the tracing-perturbs-scheduling bug: the admission
    timestamp used to be a live ``pool.min_load()`` read whose value depended
    on worker dispatch progress at the wall-clock instant of admission;
    tracing (span construction under the runtime lock) biased that race and
    produced systematically different latency patterns.  Every observability
    configuration -- tracing off, unsampled tracing, and 1-in-N head
    sampling -- must now yield bit-identical sorted latencies, and repeat
    runs of the same configuration must be deterministic.
    """
    baseline = _drive_runtime_burst(False)
    for tracing, sample in ((False, 1), (True, 1), (True, 3)):
        for _ in range(2):  # repeat: determinism within a config, too
            np.testing.assert_array_equal(
                _drive_runtime_burst(tracing, trace_sample=sample), baseline
            )
