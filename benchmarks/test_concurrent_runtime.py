"""Concurrent runtime acceptance: throughput, shedding, elastic scaling.

The acceptance bar for the concurrent serving runtime (ISSUE 5): under a
mixed least-squares + ridge + streaming load,

* the :class:`~repro.serving.runtime.AsyncSketchServer` sustains at least
  2x the request throughput of the synchronous ``SketchServer`` at equal
  accuracy (both measured in simulated device seconds, elastic scaling
  doing the heavy lifting);
* when the admission queue is saturated, requests whose deadline cannot be
  met are *shed* with a typed error -- never solved past their budget;
* the elastic policy demonstrably scales the active shard set up across a
  load spike and back down as it drains, with every transition recorded in
  telemetry.

One :func:`~repro.harness.experiments.concurrent_load` run feeds all three
checks (module-scoped fixture), plus direct unit-grade probes of the queue
bound and the scale-event timeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.experiments import concurrent_load
from repro.serving import (
    AsyncSketchServer,
    DeadlineExceededError,
    ElasticShardPolicy,
    QueueFullError,
)

pytestmark = [pytest.mark.serving, pytest.mark.runtime]


@pytest.fixture(scope="module")
def load_rows():
    rows = concurrent_load(seed=7)
    return {row["mode"]: row for row in rows}


# ---------------------------------------------------------------------------
# throughput
# ---------------------------------------------------------------------------
def test_concurrent_runtime_doubles_throughput(load_rows):
    sync = load_rows["synchronous"]
    conc = load_rows["concurrent"]
    assert conc["requests"] == sync["requests"]
    speedup = conc["requests_per_second"] / sync["requests_per_second"]
    assert speedup >= 2.0, f"concurrent runtime only {speedup:.2f}x the synchronous server"


def test_concurrent_runtime_equal_accuracy(load_rows):
    sync = load_rows["synchronous"]
    conc = load_rows["concurrent"]
    # Same traffic, same solvers, same seeds: accuracy must not degrade.
    assert conc["worst_relative_residual"] <= sync["worst_relative_residual"] * 1.05
    assert conc["worst_relative_residual"] < 0.05


# ---------------------------------------------------------------------------
# deadline shedding under saturation
# ---------------------------------------------------------------------------
def test_saturated_queue_sheds_instead_of_violating(load_rows):
    shed = load_rows["shedding"]
    assert shed["requests_shed"] >= 1, "saturation produced no deadline sheds"
    assert shed["queue_full_rejects"] >= 1, "bounded queue never pushed back"
    assert shed["deadline_violations"] == 0, (
        f"{shed['deadline_violations']:.0f} completed requests exceeded their budget "
        "-- the contract is shed, not violate"
    )
    assert shed["completed"] >= 1, "everything was shed; nothing served"
    # The telemetry counter agrees with the caller-observed sheds.
    assert shed["shed_deadline"] == shed["requests_shed"]


def test_queue_full_is_typed_backpressure():
    runtime = AsyncSketchServer(shards=1, workers=1, queue_depth=2, seed=0)
    rng = np.random.default_rng(0)
    x_true = np.ones(8)
    rejected = 0
    futures = []
    try:
        runtime.pause()  # admissions race nothing: the bound is exact
        for _ in range(32):
            a = rng.standard_normal((256, 8))
            try:
                futures.append(runtime.submit(a, a @ x_true))
            except QueueFullError as exc:
                rejected += 1
                assert exc.reason == "queue_full"
                assert exc.queue_depth >= 2
        runtime.resume()
        for f in futures:
            f.result(timeout=60.0)
    finally:
        runtime.stop()
    assert rejected == 30
    assert len(futures) == 2
    assert runtime.telemetry.admission_rejects == rejected


def test_shed_future_raises_typed_deadline_error():
    runtime = AsyncSketchServer(shards=1, workers=1, queue_depth=64, seed=0)
    rng = np.random.default_rng(1)
    x_true = np.ones(8)
    problems = [(m, m @ x_true) for m in (rng.standard_normal((512, 8)) for _ in range(24))]
    try:
        # An impossible budget: every dispatch projects past it.
        runtime.pause()
        futures = [
            runtime.submit(a, b, latency_budget=1e-12) for a, b in problems
        ]
        runtime.resume()
        sheds = 0
        for f in futures:
            try:
                f.result(timeout=60.0)
            except DeadlineExceededError as exc:
                sheds += 1
                assert exc.reason == "deadline"
                assert exc.projected_seconds > exc.budget_seconds
        assert sheds >= len(futures) - 1  # the very first may slip through idle
        assert runtime.telemetry.shed_counts().get("deadline", 0) == sheds
    finally:
        runtime.stop()


# ---------------------------------------------------------------------------
# elastic scaling
# ---------------------------------------------------------------------------
def test_elastic_policy_scales_up_then_down(load_rows):
    conc = load_rows["concurrent"]
    assert conc["scale_ups"] >= 1, "load spike never grew the active set"
    assert conc["scale_downs"] >= 1, "drained queue never shrank the active set"
    assert conc["active_max"] > conc["shards"]
    assert conc["active_final"] <= conc["shards"]


def test_scale_event_timeline_is_recorded():
    rng = np.random.default_rng(3)
    x_true = np.ones(16)
    matrices = [rng.standard_normal((2048, 16)) for _ in range(6)]
    traffic = [
        (matrices[i % 6], matrices[i % 6] @ x_true + 0.01 * rng.standard_normal(2048))
        for i in range(96)
    ]
    runtime = AsyncSketchServer(
        shards=1,
        max_batch=4,
        seed=3,
        workers=6,
        queue_depth=256,
        elastic=ElasticShardPolicy(min_shards=1, max_shards=6, queue_high=2.0,
                                   queue_low=1.0, cooldown_batches=1),
    )
    try:
        futures = [runtime.submit(a, b) for a, b in traffic]
        for f in futures:
            f.result(timeout=120.0)
        runtime.drain()
        events = runtime.scale_events()
        assert events, "no scale events recorded"
        directions = [e.direction for e in events]
        assert "up" in directions and "down" in directions
        # Telemetry carries the decision inputs and the simulated timestamp.
        for event in events:
            assert event.to_shards != event.from_shards
            assert event.reason
            assert event.at_seconds >= 0.0
        up_first = directions.index("up")
        down_last = len(directions) - 1 - directions[::-1].index("down")
        assert up_first < down_last, "scale-down should follow the spike's scale-up"
        # The active set ends back at the policy floor once the queue drains.
        assert runtime.active_shards == 1
    finally:
        runtime.stop()


# ---------------------------------------------------------------------------
# lanes
# ---------------------------------------------------------------------------
def test_stream_ingest_does_not_starve_solves(load_rows):
    conc = load_rows["concurrent"]
    # Both lanes made progress through the one queue.
    assert conc["lane_stream_requests"] >= 1
    assert conc["lane_solve_p95_seconds"] > 0.0
