"""Wall-clock microbenchmarks of the numeric kernels (pytest-benchmark).

These measure the *actual* CPU execution time of the NumPy/SciPy kernels this
reproduction runs (not the simulated H100 time), so regressions in the
numeric implementations are visible.  The relative ordering mirrors the
paper's complexity table: the CountSketch touches each entry once, the
Gaussian sketch does O(d n k) work, and the FWHT-based SRHT sits in between.
"""

import numpy as np
import pytest

from repro.core.countsketch import CountSketch, StreamingCountSketch
from repro.core.fwht import fwht_matrix
from repro.core.gaussian import GaussianSketch
from repro.core.multisketch import count_gauss
from repro.core.srht import SRHT
from repro.gpu.executor import GPUExecutor

D, N = 1 << 15, 64


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(0).standard_normal((D, N))


@pytest.fixture()
def executor():
    return GPUExecutor(numeric=True, seed=0, track_memory=False)


def test_wallclock_countsketch_apply(benchmark, matrix, executor):
    sketch = CountSketch(D, 2 * N * N, executor=executor, seed=1)
    sketch.generate()
    result = benchmark(sketch.sketch_host, matrix)
    assert result.shape == (2 * N * N, N)


def test_wallclock_streaming_countsketch_apply(benchmark, matrix, executor):
    sketch = StreamingCountSketch(D, 2 * N * N, executor=executor, seed=1)
    result = benchmark(sketch.sketch_host, matrix)
    assert result.shape == (2 * N * N, N)


def test_wallclock_gaussian_apply(benchmark, matrix, executor):
    sketch = GaussianSketch(D, 2 * N, executor=executor, seed=2)
    sketch.generate()
    result = benchmark(sketch.sketch_host, matrix)
    assert result.shape == (2 * N, N)


def test_wallclock_srht_apply(benchmark, matrix, executor):
    sketch = SRHT(D, 2 * N, executor=executor, seed=3)
    sketch.generate()
    result = benchmark(sketch.sketch_host, matrix)
    assert result.shape == (2 * N, N)


def test_wallclock_multisketch_apply(benchmark, matrix, executor):
    sketch = count_gauss(D, N, executor=executor, seed=4)
    sketch.generate()
    result = benchmark(sketch.sketch_host, matrix)
    assert result.shape == (2 * N, N)


def test_wallclock_fwht(benchmark, matrix):
    padded = np.zeros((1 << 15, N))
    padded[: matrix.shape[0]] = matrix
    result = benchmark(fwht_matrix, padded)
    assert result.shape == padded.shape


def test_wallclock_gram_matrix(benchmark, matrix):
    result = benchmark(lambda: matrix.T @ matrix)
    assert result.shape == (N, N)
