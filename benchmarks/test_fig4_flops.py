"""Figure 4: percent of peak FLOP/s achieved by each sketch."""

from repro.harness.experiments import figure2, figure4
from repro.harness.report import render_figure_rows


def test_fig4_flops(benchmark, paper_config):
    fig2_rows = figure2(paper_config)
    rows = benchmark(figure4, paper_config, rows=fig2_rows)
    print()
    print(render_figure_rows(rows, "percent_peak_flops", unit="% of peak",
                             title="Figure 4: percent of peak FLOP/s"))

    pct = {(r["d"], r["n"], r["method"]): r["percent_peak_flops"] for r in rows if not r["oom"]}
    for (d, n, method), value in pct.items():
        assert 0.0 <= value <= 100.0
        # Sparse/memory-bound sketches achieve a tiny FLOP fraction (the paper's
        # point: they are memory-bound, so FLOP/s is the wrong lens for them).
        if method in ("Count (Alg 2)", "Count (SPMM)", "Multi", "SRHT"):
            assert value < 20.0
    # The GEMM-based computations hit a large FLOP fraction at wide n.
    for d in (1 << 21, 1 << 22):
        assert pct[(d, 256, "Gram")] > 30.0
        assert pct[(d, 256, "Gauss")] > pct[(d, 256, "Count (Alg 2)")]
