"""Shared configuration for the benchmark harness.

Each ``test_*`` module regenerates one of the paper's tables or figures.  The
``paper-scale`` timing figures (2-5) are produced by the analytic cost model,
so they run at the paper's true sizes; the accuracy figures (6-8) execute real
floating point and therefore default to proportionally scaled-down grids
(documented in DESIGN.md / EXPERIMENTS.md).  Set the environment variable
``REPRO_BENCH_SCALE=scaled`` to run the accuracy figures at the larger scaled
grid (d up to 2^17).
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import SweepConfig


def accuracy_scale() -> str:
    """Grid preset used by the numeric (accuracy) benchmarks."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def paper_config() -> SweepConfig:
    """Paper-size grid, analytic cost model, single repetition."""
    return SweepConfig(scale="paper", repetitions=1)


@pytest.fixture(scope="session")
def accuracy_config() -> SweepConfig:
    """Numeric grid for the residual figures."""
    return SweepConfig(scale=accuracy_scale(), numeric=True, repetitions=1)
