"""Shared configuration for the benchmark harness.

Each ``test_*`` module regenerates one of the paper's tables or figures.  The
``paper-scale`` timing figures (2-5) are produced by the analytic cost model,
so they run at the paper's true sizes; the accuracy figures (6-8) execute real
floating point and therefore default to proportionally scaled-down grids
(documented in DESIGN.md / EXPERIMENTS.md).  Set the environment variable
``REPRO_BENCH_SCALE=scaled`` to run the accuracy figures at the larger scaled
grid (d up to 2^17).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness.runner import SweepConfig

_BENCH_DIR = pathlib.Path(__file__).parent.resolve()


#: Module-name prefixes that carry the ``planner`` marker automatically
#: (kept in sync with the marker description in pyproject.toml).
_PLANNER_PREFIXES = ("test_registry", "test_planner", "test_solver_routing")

#: Module-name prefixes that carry the ``streaming`` marker automatically.
_STREAMING_PREFIXES = ("test_streaming",)

#: Module-name prefixes that carry the ``runtime`` marker automatically
#: (the concurrent serving runtime: admission queue, shedding, elastic
#: scaling).  ``-m runtime`` runs the whole subset, and the CI fast step
#: includes it next to serving/planner/streaming.
_RUNTIME_PREFIXES = ("test_runtime", "test_concurrent_runtime")

#: Module-name prefixes that carry the ``obs`` marker automatically
#: (tracing, metrics, exporters, perf-trajectory record -- kept in sync
#: with tests/conftest.py so ``-m obs`` runs units and benchmarks alike).
_OBS_PREFIXES = (
    "test_obs", "test_metrics", "test_trace", "test_exporters", "test_record_bench",
)

#: Module-name prefixes that carry the ``slo`` marker automatically
#: (closed-loop observability: calibration, SLO burn rates, bench
#: comparison -- kept in sync with tests/conftest.py).
_SLO_PREFIXES = ("test_slo", "test_calibrat", "test_compare_bench")

#: Module-name prefixes that carry the ``durability`` marker automatically
#: (checkpoint/WAL durability, crash recovery, fault injection -- kept in
#: sync with tests/conftest.py).
_DURABILITY_PREFIXES = ("test_durability",)

#: Module-name prefixes that carry the ``frequency`` marker automatically
#: (frequency-analytics vertical: heavy hitters, norms, hierarchical
#: sketches -- kept in sync with tests/conftest.py).
_FREQUENCY_PREFIXES = ("test_frequency",)


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ with the ``benchmark`` marker.

    This is what lets the unit suite run in isolation with
    ``pytest -m "not benchmark"`` without repeating the marker in every
    module (modules can still add further markers such as ``serving``).
    Registry / routing modules additionally get the ``planner`` marker and
    online-engine modules the ``streaming`` marker, so ``-m planner`` /
    ``-m streaming`` each run their whole subset in one go.
    """
    for item in items:
        try:
            path = pathlib.Path(str(item.fspath)).resolve()
        except OSError:  # pragma: no cover - defensive
            continue
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.benchmark)
        if path.name.startswith(_PLANNER_PREFIXES):
            item.add_marker(pytest.mark.planner)
        if path.name.startswith(_STREAMING_PREFIXES):
            item.add_marker(pytest.mark.streaming)
        if path.name.startswith(_RUNTIME_PREFIXES):
            item.add_marker(pytest.mark.runtime)
        if path.name.startswith(_OBS_PREFIXES):
            item.add_marker(pytest.mark.obs)
        if path.name.startswith(_SLO_PREFIXES):
            item.add_marker(pytest.mark.slo)
        if path.name.startswith(_DURABILITY_PREFIXES):
            item.add_marker(pytest.mark.durability)
        if path.name.startswith(_FREQUENCY_PREFIXES):
            item.add_marker(pytest.mark.frequency)


def accuracy_scale() -> str:
    """Grid preset used by the numeric (accuracy) benchmarks."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def paper_config() -> SweepConfig:
    """Paper-size grid, analytic cost model, single repetition."""
    return SweepConfig(scale="paper", repetitions=1)


@pytest.fixture(scope="session")
def accuracy_config() -> SweepConfig:
    """Numeric grid for the residual figures."""
    return SweepConfig(scale=accuracy_scale(), numeric=True, repetitions=1)
