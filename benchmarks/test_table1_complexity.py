"""Table 1: embedding dimension, arithmetic, read/writes, max distortion.

Regenerates the paper's complexity table at a representative problem size and
checks the orderings the table encodes.
"""

from repro.harness.experiments import table1
from repro.harness.report import format_table


def test_table1_complexity(benchmark):
    rows = benchmark(table1, 1 << 22, 128, 0.5)
    print()
    print(format_table(rows, title="Table 1 (evaluated at d=2^22, n=128, eps=0.5)"))

    by_method = {r["method"].split("(")[0]: r for r in rows}
    # CountSketch: cheapest to apply, largest embedding dimension.
    assert by_method["CountSketch"].get("arithmetic") < by_method["SRHT"]["arithmetic"]
    assert by_method["SRHT"]["arithmetic"] < by_method["Gaussian"]["arithmetic"]
    assert by_method["CountSketch"]["embedding_dim"] > by_method["Gaussian"]["embedding_dim"]
    # Multisketch: final dimension like the Gaussian, work like the CountSketch (plus n^4).
    assert by_method["MultiSketch"]["embedding_dim"] == by_method["Gaussian"]["embedding_dim"]
    assert by_method["MultiSketch"]["arithmetic"] < by_method["Gaussian"]["arithmetic"]
