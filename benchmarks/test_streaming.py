"""Streaming engine acceptance: ingest cost, query accuracy, drift recovery.

The acceptance bar for the streaming subsystem:

1. a sliding-window :class:`~repro.streaming.solver.StreamingSolver`
   sustains ingest with per-batch update cost *independent of the total
   rows seen* (the single-pass ``O(batch * n)`` kernel accounting);
2. a query-time solution's relative residual on the current window is
   within 1.2x of a from-scratch sketch-and-solve over that window's rows;
3. on a piecewise-stationary stream, drift detection + re-solve recovers
   accuracy after the injected shift while a no-detector baseline degrades.

All timing is simulated H100 seconds from the same cost model as the rest
of the suite, so every number here is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.countsketch import CountSketch
from repro.gpu.executor import GPUExecutor
from repro.harness.experiments import streaming_drift
from repro.harness.report import format_table
from repro.linalg.lstsq import relative_residual, sketch_and_solve
from repro.streaming import StreamingSolver
from repro.theory.complexity import streaming_complexity
from repro.workloads.streams import piecewise_stationary_stream

N = 16
BATCH = 256
BUCKET_ROWS = 1024
WINDOW_BUCKETS = 4
WINDOW_ROWS = BUCKET_ROWS * WINDOW_BUCKETS
N_BATCHES = 64  # 16384 streamed rows = 4x the window


def _run_sliding_stream(seed: int = 0):
    """Ingest a long stationary stream; keep the raw batches for reference."""
    rng = np.random.default_rng(seed)
    x_true = np.linspace(-1.0, 1.0, N)
    engine = StreamingSolver(
        N,
        mode="sliding",
        bucket_rows=BUCKET_ROWS,
        window_buckets=WINDOW_BUCKETS,
        seed=seed,
        detector=False,  # pure ingest-cost / accuracy measurement
    )
    kept, costs = [], []
    for _ in range(N_BATCHES):
        rows = rng.standard_normal((BATCH, N))
        targets = rows @ x_true + 0.05 * rng.standard_normal(BATCH)
        report = engine.ingest(rows, targets)
        kept.append((rows, targets))
        costs.append(report.simulated_seconds)
    return engine, kept, np.asarray(costs)


def test_sliding_window_ingest_cost_is_stream_length_independent():
    """Per-batch update cost must not grow with the total rows seen."""
    engine, _, costs = _run_sliding_stream()
    assert engine.state.rows_total == N_BATCHES * BATCH
    assert engine.state.rows_in_window() == WINDOW_ROWS  # the ring forgot the rest

    # Quarter-vs-quarter comparison: by the last quarter the stream has seen
    # 3-4x the window, yet the per-ingest charge (update kernel + periodic
    # bucket turnover, which recurs identically in every quarter) is flat.
    quarter = N_BATCHES // 4
    early = costs[:quarter].mean()
    late = costs[-quarter:].mean()
    ratio = late / early
    print()
    print(format_table(
        [
            {"quarter": "first", "rows_seen_end": quarter * BATCH,
             "mean_ingest_seconds": early},
            {"quarter": "last", "rows_seen_end": N_BATCHES * BATCH,
             "mean_ingest_seconds": late},
        ],
        columns=["quarter", "rows_seen_end", "mean_ingest_seconds"],
        title=f"Sliding-window ingest cost (batch={BATCH}, window={WINDOW_ROWS} rows)"
              f" -- late/early ratio {ratio:.3f}",
    ))
    assert ratio < 1.25, f"ingest cost grew with stream length: {ratio:.2f}x"

    # And the kernel accounting is the single-pass one: the model says the
    # per-batch cost has stream-length exponent 0 and O(batch * n) work.
    acc = streaming_complexity(N, BATCH, mode="sliding", window_buckets=WINDOW_BUCKETS)
    assert acc["stream_length_exponent"] == 0.0
    double = streaming_complexity(N, 2 * BATCH, mode="sliding", window_buckets=WINDOW_BUCKETS)
    assert double["update_arithmetic"] == pytest.approx(2.0 * acc["update_arithmetic"])


def test_query_residual_within_1p2x_of_from_scratch_window_solve():
    """Lazy window solve vs a from-scratch sketch-and-solve on the same rows."""
    engine, kept, _ = _run_sliding_stream()
    sol = engine.solution()
    assert sol.x is not None and not sol.failed

    window_batches = WINDOW_ROWS // BATCH
    a_win = np.vstack([rows for rows, _ in kept[-window_batches:]])
    b_win = np.concatenate([targets for _, targets in kept[-window_batches:]])
    streaming_resid = relative_residual(a_win, b_win, sol.x)

    executor = GPUExecutor(numeric=True, seed=0, track_memory=False)
    sketch = CountSketch(
        a_win.shape[0], min(4 * N * N, a_win.shape[0]), executor=executor, seed=0
    )
    scratch = sketch_and_solve(a_win, b_win, sketch, executor=executor)
    ratio = streaming_resid / scratch.relative_residual
    print()
    print(format_table(
        [{"solve": "streaming window query", "relative_residual": streaming_resid},
         {"solve": "from-scratch sketch-and-solve", "relative_residual": scratch.relative_residual}],
        columns=["solve", "relative_residual"],
        title=f"Window accuracy (last {WINDOW_ROWS} rows) -- ratio {ratio:.3f}",
    ))
    assert ratio <= 1.2, f"streaming residual {ratio:.2f}x the from-scratch solve"


def test_drift_detection_recovers_while_baseline_degrades():
    """The streaming_drift experiment's headline claim."""
    rows = streaming_drift(
        n=N, rows_per_segment=4096, batch_size=BATCH, noise_std=0.05, seed=0
    )
    print()
    print(format_table(
        rows,
        columns=["config", "mean_pre_shift_residual", "mean_post_shift_residual",
                 "final_residual", "drift_events", "resolves",
                 "ingest_rows_per_second"],
        title="Drift recovery: detector + window reset vs open-loop baseline",
    ))
    by_config = {r["config"]: r for r in rows}
    detector, baseline = by_config["detector"], by_config["baseline"]

    # The injected shift was detected and answered with a re-solve.
    assert detector["drift_events"] >= 1
    assert detector["drift_resolves"] >= 1
    assert baseline["drift_events"] == 0

    # Recovery: after the shift the detector's served model returns to the
    # pre-shift accuracy regime (within 3x of the stationary residual) ...
    assert detector["final_residual"] < 3.0 * detector["mean_pre_shift_residual"]
    # ... while the open-loop baseline stays badly degraded.
    assert baseline["final_residual"] > 5.0 * detector["final_residual"]
    assert baseline["mean_post_shift_residual"] > 2.0 * detector["mean_post_shift_residual"]

    # Ingest throughput is unchanged by detection (checks stay off-clock).
    assert detector["ingest_rows_per_second"] == pytest.approx(
        baseline["ingest_rows_per_second"], rel=0.2
    )
