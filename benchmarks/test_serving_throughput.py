"""Serving-layer throughput: micro-batched server vs naive request loop.

The acceptance bar for the serving subsystem: on same-shape solve traffic the
micro-batched, operator-cached server must sustain at least 3x the
requests/sec of a naive one-request-at-a-time loop, with an operator-cache
hit rate above 90% on repeated-shape workloads.  Both sides are measured in
*simulated* device seconds from the same H100 cost model, so the comparison
is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.experiments import serving_throughput
from repro.harness.report import format_table
from repro.serving import SketchServer, naive_solve_loop

pytestmark = pytest.mark.serving

D, N = 1 << 15, 32
REQUESTS = 160
MATRICES = 2
MAX_BATCH = 8


def _traffic(seed: int = 0, requests: int = REQUESTS):
    rng = np.random.default_rng(seed)
    matrices = [rng.standard_normal((D, N)) for _ in range(MATRICES)]
    x_true = np.linspace(-1.0, 1.0, N)
    out = []
    for i in range(requests):
        a = matrices[i % MATRICES]
        out.append((a, a @ x_true + 0.01 * rng.standard_normal(D)))
    return out


def test_serving_throughput_vs_naive_loop():
    traffic = _traffic()

    # Single shard, same simulated device as the naive loop: the measured
    # speedup isolates micro-batching + operator caching, not extra hardware.
    server = SketchServer(kind="multisketch", shards=1, max_batch=MAX_BATCH, seed=0)
    for a, b in traffic:
        server.submit(a, b)
    responses = server.flush()
    stats = server.stats()

    naive = naive_solve_loop(traffic, kind="multisketch", seed=0)

    speedup = stats["requests_per_second"] / naive["requests_per_second"]

    # Sharding then scales on top of batching: the same traffic on 2 shards.
    sharded = SketchServer(kind="multisketch", shards=2, max_batch=MAX_BATCH, seed=0)
    for a, b in traffic:
        sharded.submit(a, b)
    sharded.flush()
    sharded_rps = sharded.stats()["requests_per_second"]

    print()
    print(format_table(
        [
            {"mode": "naive loop (1 device)", "rps": naive["requests_per_second"],
             "hit_rate": None, "mean_batch": 1.0},
            {"mode": "server, 1 shard", "rps": stats["requests_per_second"],
             "hit_rate": stats["cache_hit_rate"], "mean_batch": stats["mean_batch_size"]},
            {"mode": "server, 2 shards", "rps": sharded_rps,
             "hit_rate": sharded.stats()["cache_hit_rate"],
             "mean_batch": sharded.stats()["mean_batch_size"]},
        ],
        columns=["mode", "rps", "hit_rate", "mean_batch"],
        title=(f"Serving throughput (d=2^15, n={N}, {REQUESTS} requests over "
               f"{MATRICES} design matrices) -- 1-shard speedup {speedup:.1f}x"),
    ))

    # Every request was answered, correctly.
    assert len(responses) == REQUESTS
    assert all(r.x is not None for r in responses)
    assert max(r.relative_residual for r in responses) < 0.05

    # The acceptance criteria, on identical hardware budgets.
    assert speedup >= 3.0, f"micro-batched speedup only {speedup:.2f}x"
    assert stats["cache_hit_rate"] > 0.90, f"hit rate only {stats['cache_hit_rate']:.1%}"

    # The requests actually fused (otherwise the speedup came from elsewhere).
    assert stats["mean_batch_size"] >= MAX_BATCH * 0.9

    # Replicated sharding adds real concurrency on top of the batching win.
    assert sharded_rps > 1.5 * stats["requests_per_second"]


def test_serving_throughput_report(benchmark):
    """Harness entry point: one row per sketch kind, rendered as a table."""
    rows = benchmark.pedantic(
        serving_throughput,
        kwargs=dict(d=1 << 14, n=32, n_requests=128, n_matrices=2, max_batch=8,
                    shards=1,  # same hardware budget as the naive loop
                    kinds=("multisketch", "countsketch", "gaussian"), seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        rows,
        columns=["kind", "batched_rps", "naive_rps", "speedup",
                 "cache_hit_rate", "p50_us", "p99_us", "worst_relative_residual"],
        title="Serving throughput by sketch kind (d=2^14, n=32, 128 requests)",
    ))
    for row in rows:
        assert row["speedup"] >= 3.0, row
        assert row["cache_hit_rate"] > 0.90, row
        assert row["worst_relative_residual"] < 0.05, row


def test_cold_vs_warm_cache_throughput():
    """A warm operator cache must not re-pay sketch generation."""
    # Few large batches so the one-off generation cost is a visible fraction
    # of the cold pass.
    traffic = _traffic(seed=1, requests=96)
    server = SketchServer(kind="gaussian", shards=1, max_batch=16, seed=0)

    for a, b in traffic:
        server.submit(a, b)
    server.flush()
    cold = server.pool.makespan()

    for a, b in traffic:
        server.submit(a, b)
    server.flush()
    warm = server.pool.makespan() - cold

    # The Gaussian pays a one-off generation cost (k x d random values); the
    # warm pass reuses the cached operator, so it must be measurably cheaper
    # than the cold pass (the simulated clocks are deterministic, so a small
    # margin suffices) and must not register a second cache miss.
    assert warm < 0.92 * cold
    assert server.cache.stats.misses == 1
