"""Acceptance benchmark for the frequency-analytics vertical.

Three claims, each pinned as a test:

1. **Recall at the planned operating point**: a sketch sized by
   :func:`repro.problems.frequency.plan_frequency_sketch` for a target
   ``phi`` recovers at least 90% of the true ``phi``-heavy hitters of a
   Zipfian stream (both the flat ``findHH`` scan and hierarchical dyadic
   descent).
2. **Asymptotic work advantage**: hierarchical top-k does asymptotically
   less *kernel-accounted* work than the flat whole-domain scan -- measured
   with the executor's own accounting (``mark`` / ``breakdown_since``), the
   flat scan's FLOPs grow linearly with the domain while descent work stays
   essentially constant, and the advantage at the largest domain is at
   least an order of magnitude.
3. **Serving transparency**: answers served through the ``SketchServer``
   session endpoints are bit-for-bit equal to direct library calls on an
   identically-seeded, identically-fed sketch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import FrequencySketch, HierarchicalFrequencySketch
from repro.gpu.executor import GPUExecutor
from repro.problems.frequency import build_frequency_sketch, plan_frequency_sketch
from repro.serving import SketchServer
from repro.theory.frequency import hierarchical_topk_work
from repro.workloads.streams import zipf_stream

PHI = 0.1
DELTA = 1e-2


def _fresh_executor() -> GPUExecutor:
    return GPUExecutor(numeric=True, seed=0, track_memory=False)


def _feed(sketch, stream) -> None:
    for batch in stream:
        sketch.update(batch.ids, batch.weights)


def _recall(reported_ids, true_ids) -> float:
    true_ids = set(true_ids)
    if not true_ids:
        return 1.0
    return len(set(reported_ids) & true_ids) / len(true_ids)


# ---------------------------------------------------------------------------
# 1. top-k recall at the planned eps-phi point
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("need_ranges", [False, True], ids=["flat", "hierarchical"])
def test_topk_recall_on_zipfian_at_planned_operating_point(need_ranges):
    domain = 1 << 14
    stream = zipf_stream(domain, total_items=40_000, alpha=1.25, seed=11)
    plan = plan_frequency_sketch(domain, PHI, DELTA, need_ranges=need_ranges)
    assert plan.guarantee()["recoverable"]
    sketch = build_frequency_sketch(plan, executor=_fresh_executor(), seed=42)
    _feed(sketch, stream)

    true_heavy = [i for i, _ in stream.heavy_hitters(PHI)]
    if isinstance(sketch, HierarchicalFrequencySketch):
        reported = [i for i, _ in sketch.top_k(int(np.ceil(1.0 / PHI)), PHI)]
    else:
        reported = [i for i, _ in sketch.heavy_hitters(PHI)]
    recall = _recall(reported, true_heavy)
    assert recall >= 0.9, (
        f"top-k recall {recall:.2f} below 0.9 "
        f"(true {len(true_heavy)} hitters, reported {len(reported)})"
    )


# ---------------------------------------------------------------------------
# 2. hierarchical descent does asymptotically less kernel-accounted work
# ---------------------------------------------------------------------------
def test_hierarchical_topk_work_beats_flat_scan_asymptotically():
    domains = [1 << 12, 1 << 14, 1 << 16]
    width, depth, branch = 1024, 5, 16
    flat_flops, descent_flops = [], []
    for domain in domains:
        stream = zipf_stream(domain, total_items=20_000, alpha=1.3, seed=7)

        flat_ex = _fresh_executor()
        flat = FrequencySketch(domain, width, depth, executor=flat_ex, seed=1)
        _feed(flat, stream)
        mark = flat_ex.mark()
        flat.heavy_hitters(PHI)
        flat_flops.append(flat_ex.breakdown_since(mark).total_flops())

        hier_ex = _fresh_executor()
        hier = HierarchicalFrequencySketch(
            domain, width, depth, branch=branch, executor=hier_ex, seed=1
        )
        _feed(hier, stream)
        mark = hier_ex.mark()
        hier.top_k(int(np.ceil(1.0 / PHI)), PHI)
        descent_flops.append(hier_ex.breakdown_since(mark).total_flops())

    # The flat scan enumerates the domain: accounted work grows linearly
    # (x4 domain => ~x4 FLOPs, allow slack for the constant-size epilogue).
    assert flat_flops[1] > 2.5 * flat_flops[0]
    assert flat_flops[2] > 2.5 * flat_flops[1]
    # Descent work is phi- and branch-bound, not domain-bound: growing the
    # domain 16x adds only the extra levels' survivor queries.
    assert descent_flops[2] < 4.0 * descent_flops[0]
    # And the absolute advantage at the largest domain is asymptotic-scale,
    # matching the planner's closed-form prediction direction.
    advantage = flat_flops[2] / descent_flops[2]
    predicted = hierarchical_topk_work(domains[2], branch, PHI)
    assert advantage >= 10.0, f"only {advantage:.1f}x at domain 2^16"
    # The closed-form planner agrees on the direction: descent examines a
    # shrinking fraction of the domain (ratio = descent / flat < 1 here).
    assert predicted["ratio"] < 1.0


# ---------------------------------------------------------------------------
# 3. served answers are bit-for-bit the library's answers
# ---------------------------------------------------------------------------
def test_served_answers_are_bit_for_bit_library_answers():
    domain = 1 << 13
    stream = zipf_stream(domain, total_items=16_000, alpha=1.25, seed=5)
    server = SketchServer(shards=2)
    sid = server.open_frequency_stream(domain, phi=PHI, delta=DELTA, need_ranges=True)
    for batch in stream:
        server.append_items(sid, batch.ids)

    plan = plan_frequency_sketch(domain, PHI, DELTA, need_ranges=True)
    twin = build_frequency_sketch(plan, seed=server.config.seed)
    _feed(twin, stream)

    k = int(np.ceil(1.0 / PHI))
    assert server.query_heavy_hitters(sid).value == twin.top_k(k, PHI)
    assert server.query_norm(sid).value == twin.l2_estimate()
    assert server.query_range(sid, 100, 4000).value == twin.range_query(100, 4000)
    ids = stream.all_ids()[:128]
    np.testing.assert_array_equal(
        server.query_point(sid, ids).value, twin.point_query(ids)
    )
